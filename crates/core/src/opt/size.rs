//! MIG size optimization (paper Algorithm 1).
//!
//! The *eliminate* phase applies `Ω.M` (left-to-right, built into the
//! hashing constructor) and `Ω.D` (right-to-left) to delete nodes. When no
//! direct elimination exists the *reshape* phase applies `Ω.A`, `Ψ.C` and
//! `Ψ.R` — and, at higher effort, `Ψ.S` — to locally increase the number
//! of common fanins, after which elimination runs again. The
//! reshape/eliminate cycle repeats `effort` times and keeps the smallest
//! intermediate result.

use super::{Objective, OptBuffers};
use crate::{Mig, Signal};

/// The lexicographic objective Algorithm 1 minimizes.
const OBJECTIVE: Objective = Objective::SizeThenDepth;

/// Tuning knobs for [`optimize_size`].
#[derive(Debug, Clone)]
pub struct SizeOptConfig {
    /// Number of reshape/eliminate cycles (the paper's `effort`).
    pub effort: usize,
    /// Gate-count bound when exploring reconvergent cones for `Ψ.R`.
    pub cone_limit: usize,
    /// Whether reshaping may apply `Ψ.S` (temporarily inflates the MIG).
    pub use_substitution: bool,
}

impl Default for SizeOptConfig {
    fn default() -> Self {
        SizeOptConfig {
            effort: 4,
            cone_limit: 40,
            use_substitution: true,
        }
    }
}

/// Algorithm 1: reduces the number of majority nodes.
///
/// The result is functionally equivalent to the input (every step is an
/// `Ω`/`Ψ` identity) and never larger: the smallest MIG seen across all
/// cycles is returned.
///
/// # Example
///
/// ```
/// use mig_core::{Mig, optimize_size, SizeOptConfig};
///
/// let mut mig = Mig::new("redundant");
/// let a = mig.add_input("a");
/// let b = mig.add_input("b");
/// let c = mig.add_input("c");
/// // M(a, b, M(a, b, c)) = M(a, b, c) by Ω.A + Ω.M (relevance finds it).
/// let inner = mig.maj(a, b, c);
/// let outer = mig.maj(a, b, inner);
/// mig.add_output("y", outer);
/// let opt = optimize_size(&mig, &SizeOptConfig::default());
/// assert!(opt.equiv(&mig, 4));
/// assert_eq!(opt.size(), 1);
/// ```
pub fn optimize_size(mig: &Mig, config: &SizeOptConfig) -> Mig {
    optimize_size_with(mig, config, &mut OptBuffers::new())
}

/// [`optimize_size`] with caller-provided rebuild buffers, so composite
/// flows (depth/activity recovery, the bench harness) share one arena
/// pool across every pass they run.
pub(crate) fn optimize_size_with(mig: &Mig, config: &SizeOptConfig, bufs: &mut OptBuffers) -> Mig {
    let mut best = mig.cleanup();
    for cycle in 0..config.effort {
        let a = eliminate_pass(&best, bufs);
        let b = reshape_pass(&a, config.cone_limit, bufs);
        bufs.recycle(a);
        let c = eliminate_pass(&b, bufs);
        bufs.recycle(b);
        let cur = bufs.cleanup(&c);
        bufs.recycle(c);
        if OBJECTIVE.of(&cur) < OBJECTIVE.of(&best) {
            bufs.recycle(std::mem::replace(&mut best, cur));
            continue;
        }
        bufs.recycle(cur);
        // Stuck in a local minimum: optionally kick with Ψ.S, then give
        // elimination one more chance before concluding.
        if config.use_substitution {
            let kicked = substitution_kick(&best, cycle);
            let k1 = eliminate_pass(&kicked, bufs);
            bufs.recycle(kicked);
            let k2 = reshape_pass(&k1, config.cone_limit, bufs);
            bufs.recycle(k1);
            let k3 = eliminate_pass(&k2, bufs);
            bufs.recycle(k2);
            let kicked = bufs.cleanup(&k3);
            bufs.recycle(k3);
            if OBJECTIVE.of(&kicked) < OBJECTIVE.of(&best) {
                bufs.recycle(std::mem::replace(&mut best, kicked));
                continue;
            }
            bufs.recycle(kicked);
        }
        break;
    }
    best
}

/// Elimination: rebuilds the MIG applying `Ω.M` (via the constructor) and
/// `Ω.D` right-to-left wherever two fanins share two common children and
/// would become dangling.
pub(crate) fn eliminate_pass(mig: &Mig, bufs: &mut OptBuffers) -> Mig {
    let mut fanout = std::mem::take(&mut bufs.fanout);
    mig.fanout_counts_into(&mut fanout);
    let out = bufs.rebuild(mig, |new, kids, old_id| {
        let old_kids = mig.children(old_id);
        // Ω.D R→L: M(M(x,y,u), M(x,y,v), z) = M(x, y, M(u,v,z)).
        for (i, j, k) in [(0usize, 1usize, 2usize), (0, 2, 1), (1, 2, 0)] {
            let (p, q, r) = (kids[i], kids[j], kids[k]);
            let dying = |idx: usize| {
                let s = old_kids[idx];
                mig.is_gate(s.node()) && fanout[s.node().index()] == 1
            };
            if !(dying(i) && dying(j)) {
                continue;
            }
            if let Some(merged) = new.omega_d_rl(p, q, r) {
                return merged;
            }
        }
        new.maj(kids[0], kids[1], kids[2])
    });
    bufs.fanout = fanout;
    out
}

/// Builds `M(a,b,c)` but first tries the `Ψ.R` relevance rewrites on every
/// role assignment; keeps the variant with the smallest bounded cone.
pub(crate) fn maj_with_relevance(
    new: &mut Mig,
    a: Signal,
    b: Signal,
    c: Signal,
    cone_limit: usize,
) -> Signal {
    let base = new.maj(a, b, c);
    let Some(_) = new.as_maj(base) else {
        return base;
    };
    let Some(base_size) = new.cone_size_within(base, cone_limit) else {
        return base;
    };
    let mut best = base;
    let mut best_size = base_size;
    let kids = [a, b, c];
    for zi in 0..3 {
        let z = kids[zi];
        if new.as_maj(z).is_none() {
            continue;
        }
        for (xi, yi) in [((zi + 1) % 3, (zi + 2) % 3), ((zi + 2) % 3, (zi + 1) % 3)] {
            let (x, y) = (kids[xi], kids[yi]);
            if x.is_constant() {
                continue;
            }
            if new.cone_contains(z, x.node(), cone_limit) != Some(true) {
                continue;
            }
            let cand = new.psi_r(x, y, z);
            let cand_size = new.cone_size_within(cand, cone_limit).unwrap_or(usize::MAX);
            if cand_size < best_size {
                best = cand;
                best_size = cand_size;
            }
        }
    }
    best
}

/// Reshaping: applies `Ψ.R` directly and explores `Ω.A`/`Ψ.C` moves whose
/// relevance-aware inner reconstruction shrinks the local cone (this is
/// the composition that solves the paper's Fig. 2(a) automatically).
pub(crate) fn reshape_pass(mig: &Mig, cone_limit: usize, bufs: &mut OptBuffers) -> Mig {
    let mut fanout = std::mem::take(&mut bufs.fanout);
    mig.fanout_counts_into(&mut fanout);
    let out = bufs.rebuild(mig, |new, kids, old_id| {
        let base = maj_with_relevance(new, kids[0], kids[1], kids[2], cone_limit);
        let Some(_) = new.as_maj(base) else {
            return base;
        };
        let base_size = new.cone_size_within(base, cone_limit);
        let Some(base_size) = base_size else {
            return base;
        };
        let old_kids = mig.children(old_id);
        let mut best = base;
        let mut best_size = base_size;
        for zi in 0..3 {
            let z = kids[zi];
            let Some(g) = new.as_maj(z) else { continue };
            // Only restructure through a child that would die.
            let olds = old_kids[zi];
            if !mig.is_gate(olds.node()) || fanout[olds.node().index()] != 1 {
                continue;
            }
            let x = kids[(zi + 1) % 3];
            let y = kids[(zi + 2) % 3];
            for (outer_other, shared) in [(x, y), (y, x)] {
                if !g.contains(&shared) {
                    continue;
                }
                for &swap_out in g.iter().filter(|&&s| s != shared) {
                    // Ω.A with a relevance-aware inner node.
                    let t = *g
                        .iter()
                        .find(|&&s| s != shared && s != swap_out)
                        .expect("three distinct fanins");
                    let new_inner = maj_with_relevance(new, t, shared, outer_other, cone_limit);
                    let cand = maj_with_relevance(new, swap_out, shared, new_inner, cone_limit);
                    let cand_size = new.cone_size_within(cand, cone_limit).unwrap_or(usize::MAX);
                    if cand_size < best_size {
                        best = cand;
                        best_size = cand_size;
                    }
                }
            }
            // Ψ.C: a fanin of z is the complement of an outer child.
            for (other, u) in [(x, y), (y, x)] {
                if !g.contains(&!u) {
                    continue;
                }
                if let Some(cand) = new.psi_c(other, u, z) {
                    let cand_size = new.cone_size_within(cand, cone_limit).unwrap_or(usize::MAX);
                    if cand_size < best_size {
                        best = cand;
                        best_size = cand_size;
                    }
                }
            }
        }
        best
    });
    bufs.fanout = fanout;
    out
}

/// `Ψ.S` kick: rewrites the deepest output cone through a substituted
/// variable pair, temporarily inflating the MIG so that a following
/// eliminate pass can find new reductions (paper Fig. 2(b)).
pub(crate) fn substitution_kick(mig: &Mig, salt: usize) -> Mig {
    let mut out = mig.clone();
    if out.num_outputs() == 0 || out.num_inputs() < 2 {
        return out;
    }
    // Pick the deepest output, then the two most frequent inputs in its
    // (bounded) cone as the substitution pair.
    let Some(oi) = out
        .outputs()
        .iter()
        .enumerate()
        .max_by_key(|(_, (_, s))| out.level_of_signal(*s))
        .map(|(i, _)| i)
    else {
        return out;
    };
    let root = out.outputs()[oi].1;
    let cone = out.cone_gates(root);
    if cone.is_empty() || cone.len() > 200 {
        return out;
    }
    let mut freq = vec![0usize; out.num_inputs()];
    for &n in &cone {
        for ch in out.children(n) {
            if out.is_input(ch.node()) {
                freq[ch.node().index() - 1] += 1;
            }
        }
    }
    let mut order: Vec<usize> = (0..out.num_inputs()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(freq[i]));
    if freq[order[1]] == 0 {
        return out;
    }
    let v = out.input(order[salt % 2]);
    let u = out.input(order[1 - salt % 2]);
    let new_root = out.psi_s(root, u, v);
    out.set_output(oi, new_root);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_inputs() -> (Mig, Signal, Signal, Signal, Signal) {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        (mig, a, b, c, d)
    }

    #[test]
    fn eliminate_merges_distributivity() {
        let (mut mig, x, y, u, v) = four_inputs();
        let p = mig.maj(x, y, u);
        let q = mig.maj(x, y, v);
        let z = mig.input(0);
        let top = mig.maj(p, q, z);
        mig.add_output("f", top);
        assert_eq!(mig.size(), 3);
        let opt = eliminate_pass(&mig, &mut OptBuffers::new()).cleanup();
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 2, "Ω.D R→L merges the shared pair");
    }

    #[test]
    fn eliminate_respects_shared_fanout() {
        let (mut mig, x, y, u, v) = four_inputs();
        let p = mig.maj(x, y, u);
        let q = mig.maj(x, y, v);
        let z = mig.input(0);
        let top = mig.maj(p, q, z);
        mig.add_output("f", top);
        mig.add_output("p", p); // p has a second fanout: merging would not pay
        let opt = eliminate_pass(&mig, &mut OptBuffers::new()).cleanup();
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 3, "no merge when the pair is shared");
    }

    #[test]
    fn fig2a_size_optimization_reaches_zero() {
        // Paper Fig. 2(a): h = M(x, M(x, z', w), M(x, y, z)) = x.
        let mut mig = Mig::new("fig2a");
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let w = mig.add_input("w");
        let m1 = mig.maj(x, !z, w);
        let m2 = mig.maj(x, y, z);
        let h = mig.maj(x, m1, m2);
        mig.add_output("h", h);
        assert_eq!(mig.size(), 3);
        let opt = optimize_size(&mig, &SizeOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 0, "optimal size is 0 (h ≡ x)");
        assert_eq!(opt.outputs()[0].1, opt.input(0));
    }

    #[test]
    fn relevance_simplifies_reconvergence() {
        let (mut mig, a, b, c, d) = four_inputs();
        // M(a, b, M(a, c, d)): relevance replaces the inner a by b',
        // which cannot reduce here — but M(a, b, M(a', b', c)) can:
        // inner a' := b ⇒ M(b, b', c) = c ⇒ top = M(a, b, c).
        let inner = mig.maj(!a, !b, c);
        let top = mig.maj(a, b, inner);
        mig.add_output("f", top);
        let _ = d;
        assert_eq!(mig.size(), 2);
        let opt = optimize_size(&mig, &SizeOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 1);
    }

    #[test]
    fn optimize_never_increases_size() {
        // Random-ish structures: size must never grow.
        let (mut mig, a, b, c, d) = four_inputs();
        let n1 = mig.maj(a, b, c);
        let n2 = mig.maj(n1, !c, d);
        let n3 = mig.xor(n2, a);
        let n4 = mig.mux(d, n3, n1);
        mig.add_output("f", n4);
        let before = mig.size();
        let opt = optimize_size(&mig, &SizeOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert!(opt.size() <= before, "{} > {}", opt.size(), before);
    }

    #[test]
    fn substitution_kick_preserves_function() {
        let (mut mig, a, b, c, _d) = four_inputs();
        let x1 = mig.xor(a, b);
        let x2 = mig.xor(x1, c);
        mig.add_output("f", x2);
        assert_eq!(mig.size(), 6);
        let kicked = substitution_kick(&mig, 0);
        assert!(kicked.equiv(&mig, 4));
        // On 3-input XOR the Ψ.S identity collapses straight to the
        // paper's optimal 3-node form (Fig. 2(b)) through the trivial
        // rules — the "inflation" is immediately reabsorbed.
        assert_eq!(kicked.cleanup().size(), 3);
    }

    #[test]
    fn xor3_reaches_paper_optimum() {
        let (mut mig, a, b, c, _d) = four_inputs();
        let x1 = mig.xor(a, b);
        let x2 = mig.xor(x1, c);
        mig.add_output("f", x2);
        let opt = optimize_size(&mig, &SizeOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert_eq!(opt.size(), 3, "Ψ.S kick finds the 3-node XOR3 MIG");
    }

    #[test]
    fn xor3_size_is_preserved_or_reduced() {
        // The 3-XOR from Fig. 2(b): 6 nodes as built; the optimal MIG
        // (via Ψ.S) has 3. Size optimization must reach ≤ 6 and stay
        // functionally equivalent; reaching 3 shows Ψ.S pays off.
        let (mut mig, a, b, c, _d) = four_inputs();
        let x1 = mig.xor(a, b);
        let x2 = mig.xor(x1, c);
        mig.add_output("f", x2);
        let opt = optimize_size(&mig, &SizeOptConfig::default());
        assert!(opt.equiv(&mig, 4));
        assert!(opt.size() <= 6);
    }

    #[test]
    fn recycled_buffers_match_fresh_ones() {
        // Running two different circuits through one shared buffer pool
        // must give exactly the results of independent fresh runs.
        let (mut m1, a, b, c, d) = four_inputs();
        let n1 = m1.maj(a, b, c);
        let n2 = m1.mux(d, n1, a);
        m1.add_output("f", n2);
        let mut m2 = Mig::new("x3");
        let a2 = m2.add_input("a");
        let b2 = m2.add_input("b");
        let c2 = m2.add_input("c");
        let x1 = m2.xor(a2, b2);
        let x2 = m2.xor(x1, c2);
        m2.add_output("f", x2);

        let config = SizeOptConfig::default();
        let mut bufs = OptBuffers::new();
        let shared1 = optimize_size_with(&m1, &config, &mut bufs);
        let shared2 = optimize_size_with(&m2, &config, &mut bufs);
        let fresh1 = optimize_size(&m1, &config);
        let fresh2 = optimize_size(&m2, &config);
        assert_eq!(shared1.size(), fresh1.size());
        assert_eq!(shared1.depth(), fresh1.depth());
        assert_eq!(shared2.size(), fresh2.size());
        assert_eq!(shared2.depth(), fresh2.depth());
        assert!(shared1.equiv(&m1, 4));
        assert!(shared2.equiv(&m2, 4));
    }

    #[test]
    fn idempotent_on_optimal() {
        let (mut mig, a, b, c, _d) = four_inputs();
        let m = mig.maj(a, b, c);
        mig.add_output("f", m);
        let opt = optimize_size(&mig, &SizeOptConfig::default());
        assert_eq!(opt.size(), 1);
        assert!(opt.equiv(&mig, 4));
    }
}
