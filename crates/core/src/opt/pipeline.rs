//! The composable pass manager: the [`Pass`] trait, the shared
//! [`OptContext`], and the flow-script language.
//!
//! The paper's Table I flow (size → depth → activity) used to be a
//! hardcoded if-chain in the driver, with every optimizer privately
//! allocating its rebuild arenas and caches. This module turns the
//! optimizer stack into a pipeline of interchangeable passes:
//!
//! * [`Pass`] is the interface every optimizer implements — a name (the
//!   word used in flow scripts and reports), a lexicographic
//!   [`Objective`], and `run(&mut OptContext, Mig) -> Mig`.
//! * [`OptContext`] owns the state that used to be scattered per pass:
//!   the [`OptBuffers`] arena pool, the rewrite engine's cut/candidate
//!   cache, the `jobs` worker-count setting, and a per-pass wall-time
//!   ledger ([`PassReport`]). Because the context outlives pass
//!   boundaries, a flow that alternates rewriting and algebraic passes
//!   reuses arenas and translated cut sets instead of rebuilding them.
//! * [`Flow`] is a parsed flow script — a `;`-separated sequence of
//!   pass names with optional repetition (`size*2`) and convergence
//!   (`size*`) markers — with [`Flow::parse`], a canonical
//!   [`Display`](fmt::Display) rendering (scripts round-trip), and
//!   [`Flow::run`].
//!
//! # Flow-script grammar
//!
//! ```text
//! flow   := step (';' step)* [';']
//! step   := pass [ '*' [count] ]
//! pass   := 'size' | 'depth' | 'activity' | 'rewrite' | 'depth_rewrite'
//!         | 'esat' | 'depth_esat' | 'map_area' | 'map_delay'
//! count  := positive integer
//! ```
//!
//! Whitespace around tokens is ignored. `pass*N` runs the pass `N`
//! times; a bare `pass*` repeats the pass until its own success metric
//! stops improving ([`Pass::improved`] — the objective cost for most
//! passes, the activity value for `activity`; capped at
//! [`CONVERGE_CAP`] iterations). The paper's Table I flow is the script
//! `"size; depth; activity"`.
//!
//! # Example
//!
//! ```
//! use mig_core::{Flow, Mig, OptContext};
//!
//! // XOR3 from two cascaded XOR2s: 6 nodes, depth 4.
//! let mut mig = Mig::new("xor3");
//! let a = mig.add_input("a");
//! let b = mig.add_input("b");
//! let c = mig.add_input("c");
//! let t = mig.xor(a, b);
//! let f = mig.xor(t, c);
//! mig.add_output("f", f);
//!
//! let flow = Flow::parse("size; rewrite; depth").unwrap();
//! assert_eq!(flow.to_string(), "size; rewrite; depth");
//! let mut ctx = OptContext::new();
//! let opt = flow.run(mig.clone(), 2, &mut ctx);
//! assert!(opt.equiv(&mig, 4));
//! assert_eq!(opt.size(), 3, "database holds the 3-node XOR3");
//! assert_eq!(ctx.ledger().len(), 3, "one report per executed pass");
//! ```

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use super::activity::{optimize_activity_with, ActivityOptConfig};
use super::depth::{optimize_depth_with, DepthOptConfig};
use super::rewrite::{optimize_rewrite_with, RewriteCache, RewriteConfig};
use super::size::{optimize_size_with, SizeOptConfig};
use super::{Objective, OptBuffers};
use crate::level::{LevelMap, LevelStats};
use crate::Mig;

/// Iteration cap for a `pass*` convergence marker: the pass is re-run
/// while its own success metric ([`Pass::improved`]) strictly improves,
/// but never more than this many times (every pass also has an internal
/// fixpoint loop, so the cap is a backstop, not a tuning knob).
pub const CONVERGE_CAP: usize = 8;

/// Resource limits for one pipeline run, enforced by
/// [`OptContext::run_pass`] around every pass.
///
/// All limits default to "unlimited". A breached limit never aborts the
/// process or invalidates the netlist: the pass manager restores the
/// pre-pass checkpoint (or skips the pass outright) and records the
/// degraded outcome in the ledger, so the run still ends with a valid
/// graph no worse than its input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock deadline for the whole run, in milliseconds, measured
    /// from [`OptContext::begin_run`] (re-anchored by every
    /// [`Flow::run`]). Once exhausted, remaining passes are
    /// [`Skipped`](PassOutcome::Skipped).
    pub total_ms: Option<u64>,
    /// Per-pass timeout in milliseconds. A pass that overruns it is
    /// rolled back and recorded as [`TimedOut`](PassOutcome::TimedOut).
    /// Enforcement is post-hoc — the pass finishes, then its result is
    /// discarded — because passes are pure functions without an internal
    /// cancellation protocol; the whole-run deadline still bounds the
    /// damage of one slow pass to the passes after it.
    pub pass_ms: Option<u64>,
    /// Node-count cap: a pass whose output *grows* past this many
    /// majority nodes is rolled back (an input already over the cap is
    /// allowed to shrink or stay put — the cap restrains growth, it
    /// does not make oversized inputs unoptimizable).
    pub max_nodes: Option<usize>,
}

impl Budget {
    /// A budget with every limit disabled (the default).
    pub fn unlimited() -> Self {
        Self::default()
    }
}

/// How one ledgered pass execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PassOutcome {
    /// The pass ran to completion and its result was kept.
    Completed,
    /// The pass overran [`Budget::pass_ms`]; its result was discarded
    /// and the pre-pass checkpoint restored.
    TimedOut,
    /// The pass panicked, breached [`Budget::max_nodes`], or failed the
    /// post-pass [`SpotCheck`]; the pre-pass checkpoint was restored.
    RolledBack,
    /// The pass never ran: the [`Budget::total_ms`] deadline was
    /// already exhausted when its turn came.
    Skipped,
}

impl PassOutcome {
    /// Stable lower-snake-case name (used in the bench JSON schema).
    pub fn name(self) -> &'static str {
        match self {
            PassOutcome::Completed => "completed",
            PassOutcome::TimedOut => "timed_out",
            PassOutcome::RolledBack => "rolled_back",
            PassOutcome::Skipped => "skipped",
        }
    }

    /// Whether this outcome degrades the run (anything but
    /// [`Completed`](PassOutcome::Completed)).
    pub fn degraded(self) -> bool {
        !matches!(self, PassOutcome::Completed)
    }
}

impl fmt::Display for PassOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A post-pass sanity check the pass manager runs before accepting a
/// pass's result: `check` compares the candidate against the pre-pass
/// checkpoint and a `false` verdict triggers rollback.
///
/// Like [`TechModel`], the trait lives here so heavier simulation
/// back-ends (e.g. the word-parallel batch simulator in `mig_sim`) can
/// be *installed into* an [`OptContext`] from above without a crate
/// cycle; [`SimSpotCheck`] is the built-in implementation.
pub trait SpotCheck: std::fmt::Debug {
    /// Checker name for ledger notes and reports.
    fn name(&self) -> &str;

    /// Whether `candidate` is an acceptable replacement for
    /// `reference` (normally: functionally equivalent). Must be
    /// deterministic and read-only.
    fn check(&self, reference: &Mig, candidate: &Mig) -> bool;
}

/// The built-in [`SpotCheck`]: word-parallel simulation via
/// [`Mig::equiv`] — exhaustive up to 16 inputs, `rounds` random
/// 64-pattern words above that.
#[derive(Debug, Clone, Copy)]
pub struct SimSpotCheck {
    /// Random simulation rounds for graphs with more than 16 inputs.
    pub rounds: usize,
}

impl SimSpotCheck {
    /// A spot check simulating `rounds` random words (min 1).
    pub fn new(rounds: usize) -> Self {
        SimSpotCheck {
            rounds: rounds.max(1),
        }
    }
}

impl SpotCheck for SimSpotCheck {
    fn name(&self) -> &str {
        "sim"
    }

    fn check(&self, reference: &Mig, candidate: &Mig) -> bool {
        reference.num_inputs() == candidate.num_inputs()
            && reference.num_outputs() == candidate.num_outputs()
            && reference.equiv(candidate, self.rounds)
    }
}

/// Technology-mapped cost of one MIG: what a [`TechModel`] measures.
///
/// The structural metrics ([`PassMetrics`]) describe the graph; these
/// describe the *cell netlist* a technology mapper would produce for it,
/// in the units of the paper's §V experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedMetrics {
    /// Total cell area in µm².
    pub area: f64,
    /// Critical-path delay in ns.
    pub delay: f64,
    /// Estimated power in µW.
    pub power: f64,
    /// Number of cell instances.
    pub cells: usize,
}

/// A technology cost model the pass manager can consult: maps a graph
/// (conceptually — implementations run a real technology mapper) and
/// reports the mapped area/delay/power.
///
/// The trait lives here rather than in the techmap crate because the
/// dependency points the other way: `mig_techmap` depends on `mig_core`
/// for the graph and the cut enumerator, so the mapper implements this
/// trait and is *installed into* an [`OptContext`]
/// ([`OptContext::set_tech`]), giving every pass — current and future —
/// an honest mapped objective without a crate cycle.
pub trait TechModel: std::fmt::Debug {
    /// Model name for reports (typically the cell-library name).
    fn name(&self) -> &str;

    /// Measures `mig`'s technology-mapped cost. Must be deterministic
    /// and read-only — the pass manager calls it freely around passes.
    fn measure(&self, mig: &Mig) -> MappedMetrics;
}

/// Size/depth/activity of one MIG, captured by the ledger around every
/// pass execution — plus the mapped cost when the context carries a
/// [`TechModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassMetrics {
    /// Majority-node count.
    pub size: usize,
    /// Logic levels (inverters are free edge attributes).
    pub depth: u32,
    /// `Σ p(1−p)` under uniform input probabilities.
    pub activity: f64,
    /// Technology-mapped cost, measured only when the measuring
    /// [`OptContext`] has a [`TechModel`] installed (`None` otherwise —
    /// plain structural runs pay nothing for the mapping layer).
    pub mapped: Option<MappedMetrics>,
}

impl PassMetrics {
    /// Captures the three paper metrics of `mig` (no mapped cost; the
    /// context's ledger adds it when a technology model is installed).
    pub fn of(mig: &Mig) -> Self {
        PassMetrics {
            size: mig.size(),
            depth: mig.depth(),
            activity: mig.switching_activity_uniform(),
            mapped: None,
        }
    }
}

/// One entry of the [`OptContext`] wall-time ledger: which pass ran,
/// how long it took, and the metrics on either side of it. Metric
/// capture happens outside the timed window, so `millis` is the pass
/// alone.
#[derive(Debug, Clone)]
pub struct PassReport {
    /// The pass's [`Pass::name`] (`"size"`, `"rewrite"`, …).
    pub pass: String,
    /// Wall-clock time of the pass in milliseconds.
    pub millis: f64,
    /// Metrics of the graph handed to the pass.
    pub before: PassMetrics,
    /// Metrics of the graph the pass returned.
    pub after: PassMetrics,
    /// How the execution ended. Anything but
    /// [`Completed`](PassOutcome::Completed) means `after` describes
    /// the restored checkpoint (== the pre-pass graph), not the pass's
    /// own product.
    pub outcome: PassOutcome,
    /// Human-readable detail for degraded outcomes (panic message,
    /// breached limit, failed check); `None` for clean completions.
    pub note: Option<String>,
}

/// Shared state of one optimization pipeline.
///
/// Owns everything that used to be per-pass private: the
/// [`OptBuffers`] arena pool every rebuild-style pass draws from, the
/// rewrite engine's persistent cut/candidate cache (which survives
/// across pass boundaries — keyed to the graph's mutation stamp, so a
/// stale cache can never be misread), the evaluate-phase worker-count
/// setting, and the per-pass wall-time ledger. One context serves any
/// number of passes, flows, and circuits; reuse never changes results
/// (caches are keyed or reset, arenas are wiped on reuse), it only
/// removes allocations.
#[derive(Debug, Default)]
pub struct OptContext {
    pub(crate) bufs: OptBuffers,
    pub(crate) rewrite: RewriteCache,
    /// Bounded dynamic level mirror shared by the level-consuming passes
    /// (rewrite scheduling and acceptance, algebraic depth, mapping).
    /// Stamp-keyed like the rewrite cache, so reuse never changes
    /// results; carries repair statistics across a run.
    pub(crate) levels: LevelMap,
    jobs: usize,
    ledger: Vec<PassReport>,
    /// Metrics of the most recently measured graph state, keyed by its
    /// mutation stamp, so chained passes do not recompute the O(n)
    /// activity walk for a graph that was just measured.
    last_metrics: Option<(u64, PassMetrics)>,
    /// Optional technology cost model. When installed, ledger metrics
    /// carry [`PassMetrics::mapped`] and the `map_area` / `map_delay`
    /// recovery passes become active (they are no-ops without it).
    pub(crate) tech: Option<Box<dyn TechModel>>,
    /// Resource limits enforced around every pass.
    budget: Budget,
    /// Anchor of the [`Budget::total_ms`] deadline; set by
    /// [`begin_run`](OptContext::begin_run) (every [`Flow::run`] calls
    /// it) or lazily by the first [`run_pass`](OptContext::run_pass).
    run_start: Option<Instant>,
    /// Optional post-pass acceptance check; failures trigger rollback.
    spot_check: Option<Box<dyn SpotCheck>>,
}

impl OptContext {
    /// Creates a context with `jobs = 0` (available parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a context with an explicit rewrite-engine worker count
    /// (`0` = available parallelism; the count never changes results).
    pub fn with_jobs(jobs: usize) -> Self {
        OptContext {
            jobs,
            ..Self::default()
        }
    }

    /// The rewrite-engine worker-count setting.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Sets the rewrite-engine worker count (`0` = available
    /// parallelism). Wall time only; never affects results.
    pub fn set_jobs(&mut self, jobs: usize) {
        self.jobs = jobs;
    }

    /// The wall-time ledger: one [`PassReport`] per executed pass, in
    /// run order, accumulated across every [`Flow::run`] /
    /// [`OptContext::run_pass`] on this context.
    pub fn ledger(&self) -> &[PassReport] {
        &self.ledger
    }

    /// Drains the ledger (e.g. between benchmark circuits sharing one
    /// context).
    pub fn take_ledger(&mut self) -> Vec<PassReport> {
        std::mem::take(&mut self.ledger)
    }

    /// Installs a technology cost model. From here on, ledger metrics
    /// carry the mapped cost and the `map_area`/`map_delay` passes are
    /// active. Replaces any previously installed model.
    pub fn set_tech(&mut self, tech: Box<dyn TechModel>) {
        // Cached metrics lack (or carry a different model's) mapped
        // cost — never serve them for the new model.
        self.last_metrics = None;
        self.tech = Some(tech);
    }

    /// Removes the technology cost model, returning it (e.g. for a
    /// final measurement outside the pipeline).
    pub fn clear_tech(&mut self) -> Option<Box<dyn TechModel>> {
        self.last_metrics = None;
        self.tech.take()
    }

    /// The installed technology cost model, if any.
    pub fn tech(&self) -> Option<&dyn TechModel> {
        self.tech.as_deref()
    }

    /// Sets the resource budget enforced around every subsequent pass.
    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// The current resource budget.
    pub fn budget(&self) -> Budget {
        self.budget
    }

    /// Re-anchors the [`Budget::total_ms`] wall-clock deadline at "now".
    /// [`Flow::run`] calls this on entry so one context can serve many
    /// runs, each with a fresh deadline; call it yourself when driving
    /// [`run_pass`](OptContext::run_pass) manually under a budget.
    pub fn begin_run(&mut self) {
        self.run_start = Some(Instant::now());
    }

    /// Installs a post-pass acceptance check: after every pass, `check`
    /// compares the result against the pre-pass checkpoint, and on a
    /// `false` verdict the checkpoint is restored and the pass recorded
    /// as [`RolledBack`](PassOutcome::RolledBack).
    pub fn set_spot_check(&mut self, check: Box<dyn SpotCheck>) {
        self.spot_check = Some(check);
    }

    /// Removes the post-pass acceptance check, returning it. Long-lived
    /// contexts (a `mighty serve` worker reusing one context across
    /// jobs) call this between jobs so one job's `--selfcheck` never
    /// leaks into the next.
    pub fn clear_spot_check(&mut self) -> Option<Box<dyn SpotCheck>> {
        self.spot_check.take()
    }

    /// The installed post-pass acceptance check, if any.
    pub fn spot_check(&self) -> Option<&dyn SpotCheck> {
        self.spot_check.as_deref()
    }

    /// Number of cut records currently held by the incremental rewrite
    /// cache, for memory-footprint reporting.
    pub fn rewrite_cache_entries(&self) -> usize {
        self.rewrite.cut_entries()
    }

    /// Accumulated statistics of the dynamic level mirror: how often a
    /// bind was a no-op, an incremental catch-up, or a global rebuild,
    /// and how many nodes each class touched.
    pub fn level_stats(&self) -> LevelStats {
        self.levels.stats()
    }

    /// Drains and returns the level-mirror statistics (e.g. between
    /// benchmark circuits sharing one context).
    pub fn take_level_stats(&mut self) -> LevelStats {
        self.levels.take_stats()
    }

    /// Measures `mig`, reusing the previous measurement when the graph
    /// state (identified by its mutation stamp) has not changed since.
    fn metrics_of(&mut self, mig: &Mig) -> PassMetrics {
        let stamp = mig.rewrite_stamp();
        if let Some((s, m)) = self.last_metrics {
            if s == stamp {
                return m;
            }
        }
        let mut m = PassMetrics::of(mig);
        if let Some(tech) = &self.tech {
            // A crashing cost model degrades the measurement to
            // "unmapped", never the process: mapped cost is advisory.
            m.mapped = catch_unwind(AssertUnwindSafe(|| tech.measure(mig))).ok();
        }
        self.last_metrics = Some((stamp, m));
        m
    }

    /// Drops state that may describe a graph the pipeline just threw
    /// away: the incremental rewrite cache (a failed pass can leave it
    /// half-updated for an arena that no longer exists) and the metrics
    /// memo. Called on every rollback; the next sweep rebuilds both
    /// from the restored graph.
    fn recover_after_failure(&mut self) {
        self.rewrite.invalidate();
        self.last_metrics = None;
    }

    /// Runs one pass with ledger bookkeeping: metrics are captured on
    /// both sides of a timed window that contains only the pass itself
    /// (the `before` side is free when the graph was measured as the
    /// previous pass's `after`; the checkpoint clone is also outside the
    /// window, so `millis` stays comparable with unbudgeted runs).
    ///
    /// This is also the pipeline's failure boundary. Before the pass
    /// runs, the input is checkpointed (a cheap arena clone); the pass
    /// executes under [`catch_unwind`], and on a panic, a breached
    /// [`Budget`] limit, or a failed [`SpotCheck`] verdict the
    /// checkpoint is restored, the caches are invalidated, and the
    /// degraded [`PassOutcome`] is ledgered — the caller always gets
    /// back a valid graph no worse than its input, and a flow continues
    /// with its remaining passes.
    pub fn run_pass(&mut self, pass: &dyn Pass, mig: Mig) -> Mig {
        let before = self.metrics_of(&mig);
        let run_start = *self.run_start.get_or_insert_with(Instant::now);
        if let Some(total) = self.budget.total_ms {
            if run_start.elapsed() >= Duration::from_millis(total) {
                self.ledger.push(PassReport {
                    pass: pass.name().to_string(),
                    millis: 0.0,
                    before,
                    after: before,
                    outcome: PassOutcome::Skipped,
                    note: Some(format!("run deadline of {total} ms already exhausted")),
                });
                return mig;
            }
        }
        let snapshot = mig.clone();
        let start = Instant::now();
        let result = catch_unwind(AssertUnwindSafe(|| pass.run(self, mig)));
        let millis = start.elapsed().as_secs_f64() * 1e3;
        let (out, outcome, note) = match result {
            Err(payload) => {
                self.recover_after_failure();
                let detail = panic_message(payload.as_ref());
                (
                    snapshot,
                    PassOutcome::RolledBack,
                    Some(format!("pass panicked ({detail}); checkpoint restored")),
                )
            }
            Ok(out) => self.admit(snapshot, out, millis),
        };
        let after = self.metrics_of(&out);
        self.ledger.push(PassReport {
            pass: pass.name().to_string(),
            millis,
            before,
            after,
            outcome,
            note,
        });
        out
    }

    /// Budget and spot-check gate for a pass result that came back
    /// normally: returns the accepted graph (result or restored
    /// checkpoint) with its ledger outcome.
    fn admit(
        &mut self,
        snapshot: Mig,
        out: Mig,
        millis: f64,
    ) -> (Mig, PassOutcome, Option<String>) {
        if let Some(cap) = self.budget.max_nodes {
            if out.size() > cap && out.size() > snapshot.size() {
                let grown = out.size();
                self.recover_after_failure();
                self.bufs.recycle(out);
                return (
                    snapshot,
                    PassOutcome::RolledBack,
                    Some(format!(
                        "result grew to {grown} nodes, over the {cap}-node cap; checkpoint restored"
                    )),
                );
            }
        }
        if let Some(limit) = self.budget.pass_ms {
            if millis > limit as f64 {
                self.recover_after_failure();
                self.bufs.recycle(out);
                return (
                    snapshot,
                    PassOutcome::TimedOut,
                    Some(format!(
                        "pass took {millis:.1} ms, over its {limit} ms timeout; checkpoint restored"
                    )),
                );
            }
        }
        if let Some(check) = &self.spot_check {
            let verdict = catch_unwind(AssertUnwindSafe(|| check.check(&snapshot, &out)));
            if !verdict.unwrap_or(false) {
                let name = check.name().to_string();
                self.recover_after_failure();
                self.bufs.recycle(out);
                return (
                    snapshot,
                    PassOutcome::RolledBack,
                    Some(format!(
                        "{name} spot check rejected the result; checkpoint restored"
                    )),
                );
            }
        }
        self.bufs.recycle(snapshot);
        (out, PassOutcome::Completed, None)
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// One optimization pass, as the pass manager sees it.
///
/// A pass is a pure function from MIG to MIG (functionally equivalent
/// output, deterministic for a given input and configuration); it takes
/// the input by value so its arena can be recycled into the context's
/// pool. The four paper optimizers and both rewrite modes implement
/// this trait; external code can add custom passes and drive them
/// through [`OptContext::run_pass`].
pub trait Pass {
    /// Short lower-case name used in flow scripts, reports and the
    /// bench schema.
    fn name(&self) -> &'static str;

    /// The lexicographic objective the pass minimizes.
    fn objective(&self) -> Objective {
        Objective::SizeThenDepth
    }

    /// Whether one execution paid off: `after` strictly improves on
    /// `before` under the pass's own success metric. The `*`
    /// convergence marker re-runs the pass while this holds. Default:
    /// the [`objective`](Pass::objective) cost; the activity pass
    /// overrides it to compare the activity value itself (which the
    /// `Cost` type cannot carry).
    fn improved(&self, before: &PassMetrics, after: &PassMetrics) -> bool {
        let obj = self.objective();
        obj.cost(after.size, after.depth) < obj.cost(before.size, before.depth)
    }

    /// Runs the pass on `mig` using the context's shared buffers.
    fn run(&self, ctx: &mut OptContext, mig: Mig) -> Mig;
}

/// Algorithm 1 (node-count reduction) as a [`Pass`].
#[derive(Debug, Clone, Default)]
pub struct SizePass {
    /// The underlying optimizer's tuning knobs.
    pub config: SizeOptConfig,
}

impl Pass for SizePass {
    fn name(&self) -> &'static str {
        "size"
    }

    fn run(&self, ctx: &mut OptContext, mig: Mig) -> Mig {
        let out = optimize_size_with(&mig, &self.config, &mut ctx.bufs);
        ctx.bufs.recycle(mig);
        out
    }
}

/// Algorithm 2 (logic-depth reduction) as a [`Pass`].
#[derive(Debug, Clone, Default)]
pub struct DepthPass {
    /// The underlying optimizer's tuning knobs.
    pub config: DepthOptConfig,
}

impl Pass for DepthPass {
    fn name(&self) -> &'static str {
        "depth"
    }

    fn objective(&self) -> Objective {
        Objective::DepthThenSize
    }

    fn run(&self, ctx: &mut OptContext, mig: Mig) -> Mig {
        let out = optimize_depth_with(&mig, &self.config, &mut ctx.bufs, &mut ctx.levels);
        ctx.bufs.recycle(mig);
        out
    }
}

/// Section IV-C (switching-activity reduction) as a [`Pass`].
#[derive(Debug, Clone, Default)]
pub struct ActivityPass {
    /// The underlying optimizer's tuning knobs.
    pub config: ActivityOptConfig,
    /// Per-input probabilities of being logic 1; `None` means uniform
    /// 0.5 on every input (the configuration the suite reports use).
    pub probs: Option<Vec<f64>>,
}

impl Pass for ActivityPass {
    fn name(&self) -> &'static str {
        "activity"
    }

    /// `activity*` converges on the metric the pass actually minimizes:
    /// the switching-activity value (the pass may trade a little size
    /// for it within its slack, so the objective cost is the wrong
    /// convergence signal here).
    fn improved(&self, before: &PassMetrics, after: &PassMetrics) -> bool {
        after.activity < before.activity
    }

    fn run(&self, ctx: &mut OptContext, mig: Mig) -> Mig {
        let uniform;
        let probs = match &self.probs {
            Some(p) => p.as_slice(),
            None => {
                uniform = vec![0.5; mig.num_inputs()];
                uniform.as_slice()
            }
        };
        let out = optimize_activity_with(&mig, probs, &self.config, &mut ctx.bufs);
        ctx.bufs.recycle(mig);
        out
    }
}

/// Cut-based Boolean rewriting as a [`Pass`] — both flow passes in one
/// struct: with `config.goal` at [`Objective::SizeThenDepth`] this is
/// the `rewrite` pass, at [`Objective::DepthThenSize`] the
/// `depth_rewrite` pass. The pass draws the persistent
/// cut/candidate cache and the worker scratch pool from the context, so
/// consecutive rewrite steps of a flow (even with algebraic passes in
/// between) reuse translated cut sets instead of re-enumerating, and a
/// `config.jobs` of 0 defers to the context's `jobs` setting.
#[derive(Debug, Clone, Default)]
pub struct RewritePass {
    /// The underlying engine's tuning knobs (`goal` picks the mode).
    pub config: RewriteConfig,
}

impl Pass for RewritePass {
    fn name(&self) -> &'static str {
        match self.config.goal.structural() {
            Objective::SizeThenDepth => "rewrite",
            _ => "depth_rewrite",
        }
    }

    fn objective(&self) -> Objective {
        self.config.goal
    }

    fn run(&self, ctx: &mut OptContext, mig: Mig) -> Mig {
        let config = RewriteConfig {
            jobs: if self.config.jobs == 0 {
                ctx.jobs
            } else {
                self.config.jobs
            },
            ..self.config.clone()
        };
        let out = optimize_rewrite_with(
            &mig,
            &config,
            &mut ctx.bufs,
            &mut ctx.rewrite,
            &mut ctx.levels,
        );
        ctx.bufs.recycle(mig);
        out
    }
}

/// Technology-aware recovery as a [`Pass`] — the `map_area` /
/// `map_delay` flow steps. The pass re-runs the structural passes that
/// best track its mapped objective (`size` + `rewrite` for area,
/// `depth` + `depth_rewrite` for delay) and keeps the iterate with the
/// lowest *mapped* cost as measured by the context's [`TechModel`] —
/// the honest objective the structural passes cannot see. Without an
/// installed model the pass is a no-op (flows stay parseable and
/// runnable in purely structural pipelines).
#[derive(Debug, Clone)]
pub struct MapPass {
    /// The mapped objective: [`Objective::MappedArea`] (the `map_area`
    /// pass) or [`Objective::MappedDelay`] (`map_delay`). Structural
    /// objectives behave like their mapped counterpart per
    /// [`Objective::structural`] pairing.
    pub goal: Objective,
    /// Iteration budget handed to the inner structural passes.
    pub effort: usize,
}

impl Default for MapPass {
    fn default() -> Self {
        MapPass {
            goal: Objective::MappedArea,
            effort: 1,
        }
    }
}

impl Pass for MapPass {
    fn name(&self) -> &'static str {
        match self.goal.structural() {
            Objective::SizeThenDepth => "map_area",
            _ => "map_delay",
        }
    }

    fn objective(&self) -> Objective {
        self.goal
    }

    /// `map_area*` / `map_delay*` converge on the mapped cost when both
    /// sides carry one; structural cost is the fallback signal.
    fn improved(&self, before: &PassMetrics, after: &PassMetrics) -> bool {
        match (&before.mapped, &after.mapped) {
            (Some(b), Some(a)) => self.goal.mapped_cost(a) < self.goal.mapped_cost(b),
            _ => {
                let obj = self.goal.structural();
                obj.cost(after.size, after.depth) < obj.cost(before.size, before.depth)
            }
        }
    }

    fn run(&self, ctx: &mut OptContext, mig: Mig) -> Mig {
        // Take the model out so the inner structural passes (driven
        // directly, off-ledger) don't pay a mapper run per iterate
        // measurement; it goes back before returning — including on an
        // unwind, so a panicking inner pass (or mapper) rolled back by
        // `run_pass` doesn't silently strip the flow's tech model.
        let Some(tech) = ctx.tech.take() else {
            return mig;
        };
        ctx.last_metrics = None;
        let result = catch_unwind(AssertUnwindSafe(|| self.search(ctx, tech.as_ref(), mig)));
        ctx.set_tech(tech);
        match result {
            Ok(best) => best,
            Err(payload) => resume_unwind(payload),
        }
    }
}

impl MapPass {
    /// The mapped-cost recovery loop proper: alternate the structural
    /// passes and keep the best mapped cost seen.
    fn search(&self, ctx: &mut OptContext, tech: &dyn TechModel, mig: Mig) -> Mig {
        let kinds: &[PassKind] = match self.goal.structural() {
            Objective::SizeThenDepth => &[PassKind::Size, PassKind::Rewrite],
            _ => &[PassKind::Depth, PassKind::DepthRewrite],
        };
        let passes: Vec<Box<dyn Pass>> = kinds.iter().map(|k| k.build(self.effort)).collect();
        let mut best = mig;
        let mut best_cost = self.goal.mapped_cost(&tech.measure(&best));
        let mut cur = best.clone();
        for _ in 0..CONVERGE_CAP {
            for pass in &passes {
                cur = pass.run(ctx, cur);
            }
            let cost = self.goal.mapped_cost(&tech.measure(&cur));
            if cost < best_cost {
                ctx.bufs.recycle(std::mem::replace(&mut best, cur.clone()));
                best_cost = cost;
            } else {
                break;
            }
        }
        ctx.bufs.recycle(cur);
        best
    }
}

/// The built-in passes a flow script can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PassKind {
    /// Algorithm 1 — `size`.
    Size,
    /// Algorithm 2 — `depth`.
    Depth,
    /// Section IV-C — `activity`.
    Activity,
    /// Size-oriented Boolean rewriting — `rewrite`.
    Rewrite,
    /// Depth-oriented Boolean rewriting — `depth_rewrite`.
    DepthRewrite,
    /// Equality-saturation rewriting — `esat` (see
    /// [`EsatPass`](super::esat::EsatPass)).
    Esat,
    /// Depth-oriented equality-saturation rewriting — `depth_esat`.
    DepthEsat,
    /// Mapped-area recovery — `map_area` (no-op without a
    /// [`TechModel`] in the context).
    MapArea,
    /// Mapped-delay recovery — `map_delay` (no-op without a
    /// [`TechModel`] in the context).
    MapDelay,
}

impl PassKind {
    /// Every built-in pass, in documentation order.
    pub const ALL: [PassKind; 9] = [
        PassKind::Size,
        PassKind::Depth,
        PassKind::Activity,
        PassKind::Rewrite,
        PassKind::DepthRewrite,
        PassKind::Esat,
        PassKind::DepthEsat,
        PassKind::MapArea,
        PassKind::MapDelay,
    ];

    /// The flow-script name of this pass.
    pub fn name(self) -> &'static str {
        match self {
            PassKind::Size => "size",
            PassKind::Depth => "depth",
            PassKind::Activity => "activity",
            PassKind::Rewrite => "rewrite",
            PassKind::DepthRewrite => "depth_rewrite",
            PassKind::Esat => "esat",
            PassKind::DepthEsat => "depth_esat",
            PassKind::MapArea => "map_area",
            PassKind::MapDelay => "map_delay",
        }
    }

    /// Parses a flow-script pass name.
    pub fn parse(s: &str) -> Option<PassKind> {
        Self::ALL.into_iter().find(|k| k.name() == s)
    }

    /// The objective the pass minimizes (drives `*` convergence).
    pub fn objective(self) -> Objective {
        match self {
            PassKind::Size | PassKind::Activity | PassKind::Rewrite | PassKind::Esat => {
                Objective::SizeThenDepth
            }
            PassKind::Depth | PassKind::DepthRewrite | PassKind::DepthEsat => {
                Objective::DepthThenSize
            }
            PassKind::MapArea => Objective::MappedArea,
            PassKind::MapDelay => Objective::MappedDelay,
        }
    }

    /// Instantiates the pass with its default configuration at the
    /// given iteration budget (clamped to at least 1) — exactly the
    /// per-pass configuration the legacy `run_opt` if-chain used.
    pub fn build(self, effort: usize) -> Box<dyn Pass> {
        let effort = effort.max(1);
        match self {
            PassKind::Size => Box::new(SizePass {
                config: SizeOptConfig {
                    effort,
                    ..SizeOptConfig::default()
                },
            }),
            PassKind::Depth => Box::new(DepthPass {
                config: DepthOptConfig {
                    effort,
                    ..DepthOptConfig::default()
                },
            }),
            PassKind::Activity => Box::new(ActivityPass {
                config: ActivityOptConfig {
                    effort,
                    ..ActivityOptConfig::default()
                },
                probs: None,
            }),
            PassKind::Rewrite => Box::new(RewritePass {
                config: RewriteConfig {
                    effort,
                    ..RewriteConfig::default()
                },
            }),
            PassKind::DepthRewrite => Box::new(RewritePass {
                config: RewriteConfig {
                    effort,
                    goal: Objective::DepthThenSize,
                    ..RewriteConfig::default()
                },
            }),
            PassKind::Esat => Box::new(super::esat::EsatPass {
                goal: Objective::SizeThenDepth,
                effort,
                config: None,
            }),
            PassKind::DepthEsat => Box::new(super::esat::EsatPass {
                goal: Objective::DepthThenSize,
                effort,
                config: None,
            }),
            PassKind::MapArea => Box::new(MapPass {
                goal: Objective::MappedArea,
                effort,
            }),
            PassKind::MapDelay => Box::new(MapPass {
                goal: Objective::MappedDelay,
                effort,
            }),
        }
    }
}

impl fmt::Display for PassKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How often one flow step runs its pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repeat {
    /// A fixed number of executions (`pass` is 1, `pass*3` is 3).
    Times(usize),
    /// Re-run while the pass's objective strictly improves (`pass*`),
    /// capped at [`CONVERGE_CAP`] executions.
    Converge,
}

/// One step of a flow: a pass plus its repetition marker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowStep {
    /// Which pass runs.
    pub pass: PassKind,
    /// How often it runs.
    pub repeat: Repeat,
}

impl fmt::Display for FlowStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.repeat {
            Repeat::Times(1) => write!(f, "{}", self.pass),
            Repeat::Times(n) => write!(f, "{}*{n}", self.pass),
            Repeat::Converge => write!(f, "{}*", self.pass),
        }
    }
}

/// A parsed flow script: the sequence of pass steps a pipeline runs.
///
/// The [`Display`](fmt::Display) rendering is the canonical script form
/// (`"size*2; rewrite; depth"`); parsing it back yields an equal
/// `Flow`, so scripts round-trip.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Flow {
    /// The steps, in run order.
    pub steps: Vec<FlowStep>,
}

impl Flow {
    /// Parses a flow script (see the [module docs](self) for the
    /// grammar). Empty segments are tolerated (trailing `;`), an empty
    /// script is an error, and unknown pass names or malformed repeat
    /// counts report what was expected.
    pub fn parse(script: &str) -> Result<Flow, String> {
        let mut steps = Vec::new();
        for raw in script.split(';') {
            let tok = raw.trim();
            if tok.is_empty() {
                continue;
            }
            let (name, repeat) = match tok.split_once('*') {
                None => (tok, Repeat::Times(1)),
                Some((name, count)) => {
                    let count = count.trim();
                    let repeat = if count.is_empty() {
                        Repeat::Converge
                    } else {
                        let n: usize = count
                            .parse()
                            .map_err(|e| format!("`{tok}`: bad repeat count: {e}"))?;
                        if n == 0 {
                            return Err(format!("`{tok}`: repeat count must be at least 1"));
                        }
                        Repeat::Times(n)
                    };
                    (name.trim_end(), repeat)
                }
            };
            let pass = PassKind::parse(name).ok_or_else(|| {
                let known: Vec<&str> = PassKind::ALL.iter().map(|k| k.name()).collect();
                format!(
                    "unknown pass `{name}` (expected one of {})",
                    known.join(", ")
                )
            })?;
            steps.push(FlowStep { pass, repeat });
        }
        if steps.is_empty() {
            return Err("empty flow script".into());
        }
        Ok(Flow { steps })
    }

    /// Runs the flow on `mig` through the shared context. `effort` is
    /// the iteration budget handed to every pass ([`PassKind::build`]);
    /// each executed pass appends one entry to the context's ledger.
    pub fn run(&self, mig: Mig, effort: usize, ctx: &mut OptContext) -> Mig {
        self.run_observed(mig, effort, ctx, |_| {})
    }

    /// [`Flow::run`] with a per-pass observer: `observe` is invoked with
    /// the ledger entry of every executed pass, immediately after it
    /// finishes. This is the hook `mighty serve` uses to stream per-pass
    /// progress lines to a client while the job is still running; the
    /// observer sees exactly what the wall-time ledger records, so a
    /// streamed trace and the final report can never disagree.
    pub fn run_observed(
        &self,
        mig: Mig,
        effort: usize,
        ctx: &mut OptContext,
        mut observe: impl FnMut(&PassReport),
    ) -> Mig {
        ctx.begin_run();
        let mut cur = mig;
        for step in &self.steps {
            let pass = step.pass.build(effort);
            match step.repeat {
                Repeat::Times(n) => {
                    for _ in 0..n {
                        cur = ctx.run_pass(&*pass, cur);
                        observe(ctx.ledger().last().expect("run_pass appends"));
                    }
                }
                Repeat::Converge => {
                    // Every pass is monotone under its own success
                    // metric, so the final (non-improving) iterate is
                    // still no worse than its input and can be kept.
                    for _ in 0..CONVERGE_CAP {
                        cur = ctx.run_pass(&*pass, cur);
                        let report = ctx.ledger().last().expect("run_pass appends");
                        observe(report);
                        if !pass.improved(&report.before, &report.after) {
                            break;
                        }
                    }
                }
            }
        }
        cur
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize_depth, optimize_size, DepthOptConfig, Signal, SizeOptConfig};

    fn xor_tangle() -> Mig {
        let mut mig = Mig::new("tangle");
        let ins: Vec<Signal> = (0..5).map(|i| mig.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for (i, &x) in ins.iter().enumerate().skip(1) {
            acc = match i % 3 {
                0 => mig.xor(acc, x),
                1 => mig.maj(acc, x, ins[(i + 2) % 5]),
                _ => mig.mux(x, acc, ins[(i + 3) % 5]),
            };
        }
        mig.add_output("y", acc);
        mig
    }

    #[test]
    fn parse_accepts_the_grammar() {
        let flow = Flow::parse(" size*2 ;rewrite; depth_rewrite * ; activity ;").unwrap();
        assert_eq!(
            flow.steps,
            vec![
                FlowStep {
                    pass: PassKind::Size,
                    repeat: Repeat::Times(2)
                },
                FlowStep {
                    pass: PassKind::Rewrite,
                    repeat: Repeat::Times(1)
                },
                FlowStep {
                    pass: PassKind::DepthRewrite,
                    repeat: Repeat::Converge
                },
                FlowStep {
                    pass: PassKind::Activity,
                    repeat: Repeat::Times(1)
                },
            ]
        );
        assert_eq!(
            flow.to_string(),
            "size*2; rewrite; depth_rewrite*; activity"
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for (script, needle) in [
            ("", "empty flow"),
            ("  ;; ", "empty flow"),
            ("speed", "unknown pass `speed`"),
            ("size*x", "bad repeat count"),
            ("size*0", "at least 1"),
            ("size**2", "bad repeat count"),
        ] {
            let err = Flow::parse(script).unwrap_err();
            assert!(err.contains(needle), "`{script}` → {err}");
        }
    }

    #[test]
    fn display_parse_round_trips() {
        for script in [
            "size",
            "size*3; depth",
            "rewrite*; size; depth_rewrite; activity*2",
        ] {
            let flow = Flow::parse(script).unwrap();
            assert_eq!(Flow::parse(&flow.to_string()).unwrap(), flow);
            assert_eq!(flow.to_string(), script);
        }
        // Times(1) written explicitly normalizes to the bare name.
        assert_eq!(Flow::parse("size*1").unwrap().to_string(), "size");
    }

    #[test]
    fn flow_matches_the_manual_pass_sequence() {
        // "size; depth" through the pipeline must reproduce the direct
        // optimizer calls node for node (fresh buffers vs shared
        // context must not matter).
        let mig = xor_tangle();
        let mut ctx = OptContext::with_jobs(1);
        let flowed = Flow::parse("size; depth")
            .unwrap()
            .run(mig.clone(), 2, &mut ctx);
        let manual = optimize_depth(
            &optimize_size(
                &mig,
                &SizeOptConfig {
                    effort: 2,
                    ..SizeOptConfig::default()
                },
            ),
            &DepthOptConfig {
                effort: 2,
                ..DepthOptConfig::default()
            },
        );
        assert!(flowed.equiv(&mig, 4));
        assert_eq!(flowed.num_nodes(), manual.num_nodes());
        for node in flowed.gate_ids() {
            assert_eq!(flowed.children(node), manual.children(node), "{node}");
        }
        assert_eq!(flowed.outputs(), manual.outputs());
    }

    #[test]
    fn ledger_records_every_executed_pass() {
        let mig = xor_tangle();
        let mut ctx = OptContext::with_jobs(1);
        let before = PassMetrics::of(&mig);
        let out = Flow::parse("size*2; rewrite")
            .unwrap()
            .run(mig.clone(), 1, &mut ctx);
        let ledger = ctx.take_ledger();
        assert_eq!(
            ledger.iter().map(|r| r.pass.as_str()).collect::<Vec<_>>(),
            ["size", "size", "rewrite"]
        );
        assert_eq!(ledger[0].before.size, before.size);
        for pair in ledger.windows(2) {
            assert_eq!(pair[0].after.size, pair[1].before.size);
        }
        assert_eq!(ledger.last().unwrap().after.size, out.size());
        assert!(ctx.ledger().is_empty(), "take_ledger drains");
    }

    #[test]
    fn observer_sees_exactly_the_ledger() {
        let mig = xor_tangle();
        let mut ctx = OptContext::with_jobs(1);
        let mut seen: Vec<(String, u64)> = Vec::new();
        let observed = Flow::parse("size*2; rewrite; depth*")
            .unwrap()
            .run_observed(mig.clone(), 1, &mut ctx, |r| {
                seen.push((r.pass.clone(), r.after.size as u64));
            });
        let ledger = ctx.take_ledger();
        assert_eq!(seen.len(), ledger.len(), "one callback per entry");
        for (got, want) in seen.iter().zip(ledger.iter()) {
            assert_eq!(got.0, want.pass);
            assert_eq!(got.1, want.after.size as u64);
        }
        // And the observed run computes the same result as a plain run.
        let plain = Flow::parse("size*2; rewrite; depth*").unwrap().run(
            mig,
            1,
            &mut OptContext::with_jobs(1),
        );
        assert_eq!(observed.size(), plain.size());
        assert_eq!(observed.depth(), plain.depth());
    }

    #[test]
    fn converge_stops_at_the_fixpoint() {
        let mig = xor_tangle();
        let mut ctx = OptContext::with_jobs(1);
        let out = Flow::parse("size*").unwrap().run(mig.clone(), 1, &mut ctx);
        let runs = ctx.ledger().len();
        assert!((1..=CONVERGE_CAP).contains(&runs), "{runs} runs");
        // The last run is the non-improving one (unless the cap hit),
        // and keeping it is safe because passes are monotone.
        let last = ctx.ledger().last().unwrap();
        if runs < CONVERGE_CAP {
            assert!(
                (last.after.size, last.after.depth) >= (last.before.size, last.before.depth),
                "converge must stop on the first non-improving run"
            );
        }
        assert_eq!(out.size(), last.after.size);
        assert!(out.equiv(&mig, 4));
    }

    #[test]
    fn activity_convergence_tracks_the_activity_metric() {
        // The activity pass may trade a little size within its slack;
        // `activity*` must keep iterating while the activity value
        // falls, and stop when it does not — size is not the signal.
        let pass = ActivityPass::default();
        let before = PassMetrics {
            size: 10,
            depth: 5,
            activity: 3.0,
            mapped: None,
        };
        let larger_but_calmer = PassMetrics {
            size: 11,
            depth: 5,
            activity: 2.5,
            mapped: None,
        };
        assert!(pass.improved(&before, &larger_but_calmer));
        assert!(!pass.improved(&larger_but_calmer, &before));
        // The default (objective-cost) rule still drives the others.
        let size_pass = SizePass::default();
        assert!(size_pass.improved(
            &before,
            &PassMetrics {
                size: 9,
                depth: 5,
                activity: 3.0,
                mapped: None
            }
        ));
        assert!(!size_pass.improved(&before, &larger_but_calmer));
    }

    #[test]
    fn depth_rewrite_pass_reduces_depth_and_never_grows() {
        // An XOR chain: the size-oriented database structures are also
        // shallower, and the depth goal must find them without adding
        // nodes.
        let mut mig = Mig::new("xorchain");
        let ins: Vec<Signal> = (0..6).map(|i| mig.add_input(format!("x{i}"))).collect();
        let mut acc = ins[0];
        for &x in &ins[1..] {
            acc = mig.xor(acc, x);
        }
        mig.add_output("y", acc);
        let mut ctx = OptContext::with_jobs(1);
        let out = Flow::parse("depth_rewrite")
            .unwrap()
            .run(mig.clone(), 2, &mut ctx);
        assert!(out.equiv(&mig, 4));
        assert!(
            out.depth() < mig.depth(),
            "{} !< {}",
            out.depth(),
            mig.depth()
        );
        assert!(out.size() <= mig.size());
    }

    #[test]
    fn shared_context_matches_fresh_contexts() {
        // Two circuits through one context must give exactly the
        // results of independent fresh contexts (arena and cut-cache
        // reuse never changes results).
        let m1 = xor_tangle();
        let mut m2 = Mig::new("x3");
        let a = m2.add_input("a");
        let b = m2.add_input("b");
        let c = m2.add_input("c");
        let t = m2.xor(a, b);
        let f = m2.xor(t, c);
        m2.add_output("f", f);

        let flow = Flow::parse("size; rewrite; depth").unwrap();
        let mut shared = OptContext::with_jobs(1);
        let s1 = flow.run(m1.clone(), 2, &mut shared);
        let s2 = flow.run(m2.clone(), 2, &mut shared);
        let f1 = flow.run(m1.clone(), 2, &mut OptContext::with_jobs(1));
        let f2 = flow.run(m2.clone(), 2, &mut OptContext::with_jobs(1));
        for (s, f) in [(&s1, &f1), (&s2, &f2)] {
            assert_eq!(s.num_nodes(), f.num_nodes());
            for node in s.gate_ids() {
                assert_eq!(s.children(node), f.children(node));
            }
            assert_eq!(s.outputs(), f.outputs());
        }
        assert!(s1.equiv(&m1, 4) && s2.equiv(&m2, 4));
    }
}
