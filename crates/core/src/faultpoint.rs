//! Deterministic fault injection for resilience testing.
//!
//! Compiled only under the `faultpoints` cargo feature; the default
//! build contains none of this code and the [`faultpoint!`]/
//! [`faultpoint_corrupt!`] macros expand to nothing. With the feature
//! on, named *fault sites* threaded through the hot loops (cut
//! enumeration, NPN matching, commit, the technology mapper) consult a
//! process-wide fault plan and — deterministically, driven by a
//! SplitMix64 stream per rule — panic, sleep, or corrupt a value in
//! flight. The resilience layer in [`crate::opt::pipeline`] must then
//! degrade gracefully: forfeit the worker, roll the pass back, and
//! finish the flow with a valid netlist.
//!
//! # Plan grammar
//!
//! A plan is a comma-separated list of rules, each
//! `SITE:KIND[:ONE_IN[:SEED]]`:
//!
//! * `SITE` — a fault-site name such as `rewrite.npn`, or `*` to match
//!   every site;
//! * `KIND` — `panic`, `corrupt`, or `delay<MILLIS>` (e.g. `delay25`);
//! * `ONE_IN` — trip on average once per `ONE_IN` arrivals (default 1:
//!   every arrival trips);
//! * `SEED` — SplitMix64 seed for this rule's decision stream
//!   (default 1).
//!
//! Example: `rewrite.npn:panic:5:7,techmap.map:delay20`. Plans come
//! from [`configure`] or, via [`configure_from_env`], the `MIG_FAULTS`
//! environment variable.
//!
//! # Determinism
//!
//! Each rule owns a private SplitMix64 stream advanced once per
//! matching arrival, so a given plan trips on the same arrival indices
//! in every run. Arrival *order* at a site inside parallel workers
//! depends on thread scheduling; single-threaded runs (`--jobs 1`) are
//! exactly reproducible, and the harness assertions (no abort, final
//! equivalence, ledger records the degradation) hold for any
//! interleaving.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use mig_netlist::SplitMix64;

/// Environment variable read by [`configure_from_env`].
pub const ENV_VAR: &str = "MIG_FAULTS";

/// What a tripped fault site does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a recognizable message (exercises `catch_unwind`
    /// isolation and checkpoint rollback).
    Panic,
    /// Sleep for the given number of milliseconds (exercises per-pass
    /// timeouts and wall-clock budgets).
    Delay(u64),
    /// Flip one pseudo-random bit in the value passed to
    /// [`faultpoint_corrupt!`] (exercises the post-pass spot check).
    Corrupt,
}

#[derive(Debug)]
struct Rule {
    site: String,
    kind: FaultKind,
    one_in: u64,
    rng: SplitMix64,
    hits: u64,
    trips: u64,
}

impl Rule {
    fn matches(&self, site: &str) -> bool {
        self.site == "*" || self.site == site
    }

    /// Advance the decision stream for one arrival; `Some(draw)` when
    /// the rule trips.
    fn arrive(&mut self) -> Option<u64> {
        self.hits += 1;
        let draw = self.rng.next_u64();
        if self.one_in <= 1 || draw.is_multiple_of(self.one_in) {
            self.trips += 1;
            Some(draw)
        } else {
            None
        }
    }
}

/// Fast-path flag: false whenever the plan is empty, so an unconfigured
/// `faultpoints` build pays one relaxed atomic load per site arrival
/// and nothing else (this keeps the zero-fault ≤1.05× wall-time gate
/// honest).
static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Vec<Rule>> = Mutex::new(Vec::new());

fn parse_rule(text: &str) -> Result<Rule, String> {
    let parts: Vec<&str> = text.split(':').collect();
    if parts.len() < 2 || parts.len() > 4 {
        return Err(format!(
            "fault rule `{text}`: expected SITE:KIND[:ONE_IN[:SEED]]"
        ));
    }
    let site = parts[0].trim();
    if site.is_empty() {
        return Err(format!("fault rule `{text}`: empty site name"));
    }
    let kind = match parts[1].trim() {
        "panic" => FaultKind::Panic,
        "corrupt" => FaultKind::Corrupt,
        k if k.starts_with("delay") => {
            let ms: u64 = k["delay".len()..]
                .parse()
                .map_err(|e| format!("fault rule `{text}`: bad delay millis: {e}"))?;
            FaultKind::Delay(ms)
        }
        other => {
            return Err(format!(
                "fault rule `{text}`: unknown kind `{other}` (panic, corrupt, delay<MS>)"
            ));
        }
    };
    let one_in: u64 = match parts.get(2) {
        Some(p) => p
            .trim()
            .parse()
            .map_err(|e| format!("fault rule `{text}`: bad ONE_IN: {e}"))?,
        None => 1,
    };
    let seed: u64 = match parts.get(3) {
        Some(p) => p
            .trim()
            .parse()
            .map_err(|e| format!("fault rule `{text}`: bad SEED: {e}"))?,
        None => 1,
    };
    Ok(Rule {
        site: site.to_string(),
        kind,
        one_in: one_in.max(1),
        rng: SplitMix64::seed_from_u64(seed),
        hits: 0,
        trips: 0,
    })
}

/// Install a fault plan (see the module docs for the grammar),
/// replacing any previous plan. An empty spec disarms every site.
pub fn configure(spec: &str) -> Result<(), String> {
    let mut rules = Vec::new();
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        rules.push(parse_rule(part)?);
    }
    let armed = !rules.is_empty();
    *PLAN.lock().unwrap() = rules;
    ARMED.store(armed, Ordering::Release);
    Ok(())
}

/// Install the plan from the `MIG_FAULTS` environment variable, if set.
/// Unset or empty leaves every site disarmed.
pub fn configure_from_env() -> Result<(), String> {
    match std::env::var(ENV_VAR) {
        Ok(spec) => configure(&spec),
        Err(_) => Ok(()),
    }
}

/// Disarm every fault site and forget the plan.
pub fn clear() {
    ARMED.store(false, Ordering::Release);
    PLAN.lock().unwrap().clear();
}

/// Per-rule `(site, arrivals, trips)` counters, for harness assertions
/// that a plan actually fired.
pub fn stats() -> Vec<(String, u64, u64)> {
    PLAN.lock()
        .unwrap()
        .iter()
        .map(|r| (r.site.clone(), r.hits, r.trips))
        .collect()
}

/// Total trips across all rules.
pub fn total_trips() -> u64 {
    PLAN.lock().unwrap().iter().map(|r| r.trips).sum()
}

/// Record one arrival at `site`; panics or sleeps if a matching rule
/// trips with that kind. Called via the [`faultpoint!`] macro.
pub fn hit(site: &str) {
    if !ARMED.load(Ordering::Acquire) {
        return;
    }
    let mut tripped: Option<FaultKind> = None;
    {
        let mut plan = PLAN.lock().unwrap();
        for rule in plan.iter_mut() {
            if rule.matches(site) && rule.kind != FaultKind::Corrupt && rule.arrive().is_some() {
                tripped = Some(rule.kind);
                break;
            }
        }
        // The lock is released here: panicking or sleeping while
        // holding it would poison the plan for every other worker.
    }
    match tripped {
        Some(FaultKind::Panic) => panic!("injected fault: {ENV_VAR} site `{site}`"),
        Some(FaultKind::Delay(ms)) => std::thread::sleep(std::time::Duration::from_millis(ms)),
        _ => {}
    }
}

/// Record one arrival at a corruption site and return `value`, with one
/// pseudo-random bit flipped if a matching `corrupt` rule trips. Called
/// via the [`faultpoint_corrupt!`] macro.
pub fn corrupt_u16(site: &str, value: u16) -> u16 {
    if !ARMED.load(Ordering::Acquire) {
        return value;
    }
    let mut plan = PLAN.lock().unwrap();
    for rule in plan.iter_mut() {
        if rule.matches(site) && rule.kind == FaultKind::Corrupt {
            if let Some(draw) = rule.arrive() {
                return value ^ (1u16 << (draw >> 32 & 15));
            }
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize tests that touch the process-wide plan.
    static GATE: Mutex<()> = Mutex::new(());

    #[test]
    fn plan_parsing_accepts_the_documented_grammar() {
        let _g = GATE.lock().unwrap();
        configure("rewrite.npn:panic:5:7, techmap.map:delay20, *:corrupt").unwrap();
        let s = stats();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].0, "rewrite.npn");
        assert!(configure("nope").is_err());
        assert!(configure("a:frob").is_err());
        assert!(configure("a:delayx").is_err());
        assert!(configure(":panic").is_err());
        clear();
    }

    #[test]
    fn one_in_rules_trip_deterministically() {
        let _g = GATE.lock().unwrap();
        configure("site:corrupt:3:42").unwrap();
        let first: Vec<u16> = (0..32).map(|_| corrupt_u16("site", 0)).collect();
        configure("site:corrupt:3:42").unwrap();
        let second: Vec<u16> = (0..32).map(|_| corrupt_u16("site", 0)).collect();
        assert_eq!(first, second);
        assert!(first.iter().any(|&v| v != 0), "rule never tripped");
        assert!(first.contains(&0), "one-in-3 tripped every time");
        // Unmatched sites pass values through untouched.
        assert_eq!(corrupt_u16("other", 7), 7);
        clear();
    }

    #[test]
    fn panic_rules_panic_with_a_recognizable_payload() {
        let _g = GATE.lock().unwrap();
        configure("boom:panic").unwrap();
        let err = std::panic::catch_unwind(|| hit("boom")).unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected fault"), "payload: {msg}");
        assert_eq!(total_trips(), 1);
        hit("quiet"); // non-matching sites are free
        assert_eq!(total_trips(), 1);
        clear();
        hit("boom"); // disarmed
    }
}
