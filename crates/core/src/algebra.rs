//! Executable forms of the MIG Boolean algebra (paper Section III-B).
//!
//! The primitive axiom set `Ω` and the derived rule set `Ψ`:
//!
//! * `Ω.C` commutativity — implicit (fanins are kept sorted).
//! * `Ω.M` majority — applied automatically by [`Mig::maj`].
//! * `Ω.A` associativity — [`Mig::omega_a`].
//! * `Ω.D` distributivity — [`Mig::omega_d_lr`] (L→R) and
//!   [`Mig::omega_d_rl`] (R→L).
//! * `Ω.I` inverter propagation — implicit (inverter normalization).
//! * `Ψ.R` relevance — [`Mig::psi_r`].
//! * `Ψ.C` complementary associativity — [`Mig::psi_c`].
//! * `Ψ.S` substitution — [`Mig::psi_s`].
//!
//! Every rule is purely constructive: it never mutates existing nodes, it
//! builds the rewritten shape through the hashing constructor and returns
//! the new root signal. Dead originals are swept later by
//! [`Mig::cleanup`].

use crate::{Mig, NodeId, Signal};

impl Mig {
    /// `Ω.A` associativity: `M(x, u, M(y, u, z)) = M(z, u, M(y, u, x))`.
    ///
    /// `outer_other` plays `x`, `shared` plays `u`, and `inner` must be a
    /// majority whose fanins (functional view) contain `shared`; `swap_out`
    /// selects which remaining inner fanin plays `z` (is hoisted out).
    /// Returns `None` when the pattern does not match.
    pub fn omega_a(
        &mut self,
        outer_other: Signal,
        shared: Signal,
        inner: Signal,
        swap_out: Signal,
    ) -> Option<Signal> {
        let kids = self.as_maj(inner)?;
        if !kids.contains(&shared) || !kids.contains(&swap_out) || shared == swap_out {
            return None;
        }
        // The remaining inner fanin plays y.
        let y = *kids.iter().find(|&&k| k != shared && k != swap_out)?;
        let new_inner = self.maj(y, shared, outer_other);
        Some(self.maj(swap_out, shared, new_inner))
    }

    /// `Ω.D` distributivity, left-to-right:
    /// `M(x, y, M(u, v, z)) = M(M(x, y, u), M(x, y, v), z)`.
    ///
    /// `inner` must be a majority; `keep` selects the fanin that stays
    /// outside (plays `z`, typically the critical signal being pushed
    /// toward the output). Returns `None` if the pattern does not match.
    pub fn omega_d_lr(
        &mut self,
        x: Signal,
        y: Signal,
        inner: Signal,
        keep: Signal,
    ) -> Option<Signal> {
        let kids = self.as_maj(inner)?;
        if !kids.contains(&keep) {
            return None;
        }
        let mut rest = kids.iter().copied().filter(|&k| k != keep);
        let u = rest.next()?;
        let v = rest.next().unwrap_or(keep);
        let p = self.maj(x, y, u);
        let q = self.maj(x, y, v);
        Some(self.maj(p, q, keep))
    }

    /// `Ω.D` distributivity, right-to-left:
    /// `M(M(x, y, u), M(x, y, v), z) = M(x, y, M(u, v, z))`.
    ///
    /// `p` and `q` must be majorities sharing two fanins in the functional
    /// view. Returns the merged form, or `None` when no two fanins are
    /// shared.
    pub fn omega_d_rl(&mut self, p: Signal, q: Signal, z: Signal) -> Option<Signal> {
        let pk = self.as_maj(p)?;
        let qk = self.as_maj(q)?;
        // Find two shared fanins (as signals, complement included) with a
        // greedy bipartite match over the 3×3 pairs — fixed-size state, no
        // allocation in this hot eliminate-phase helper.
        let mut q_used = [false; 3];
        let mut shared = [Signal::FALSE; 2];
        let mut n_shared = 0usize;
        let mut p_first_rest: Option<Signal> = None;
        for s in pk {
            let matched = (0..3).find(|&j| !q_used[j] && qk[j] == s);
            match matched {
                Some(j) => {
                    q_used[j] = true;
                    if n_shared < 2 {
                        shared[n_shared] = s;
                    }
                    n_shared += 1;
                }
                None => {
                    if p_first_rest.is_none() {
                        p_first_rest = Some(s);
                    }
                }
            }
        }
        if n_shared < 2 {
            return None;
        }
        // With all three shared, the nodes are identical (strashing would
        // have merged them) — still handled: u = v makes the inner trivial.
        let (u, v) = if n_shared == 3 {
            (shared[1], shared[1])
        } else {
            let v = qk[(0..3).find(|&j| !q_used[j]).expect("one q fanin left")];
            (p_first_rest.expect("one p fanin left"), v)
        };
        let (x, y) = (shared[0], shared[1]);
        let inner = self.maj(u, v, z);
        Some(self.maj(x, y, inner))
    }

    /// `Ψ.C` complementary associativity:
    /// `M(x, u, M(y, u', z)) = M(x, u, M(y, x, z))`.
    ///
    /// `inner` must be a majority containing `!u` in its functional view;
    /// that occurrence is replaced by `x`. Returns `None` if the pattern
    /// does not match.
    pub fn psi_c(&mut self, x: Signal, u: Signal, inner: Signal) -> Option<Signal> {
        let kids = self.as_maj(inner)?;
        let pos = kids.iter().position(|&k| k == !u)?;
        let mut new_kids = kids;
        new_kids[pos] = x;
        let new_inner = self.maj(new_kids[0], new_kids[1], new_kids[2]);
        Some(self.maj(x, u, new_inner))
    }

    /// `Ψ.R` relevance: `M(x, y, z) = M(x, y, z[x := y'])`.
    ///
    /// Rebuilds the cone of `z` with every occurrence of `x`'s node
    /// replaced by `!y` (adjusted for the polarity with which `x` enters),
    /// then reassembles the majority. Sound because `z` only matters when
    /// `x ≠ y` (paper Theorem 3.7).
    pub fn psi_r(&mut self, x: Signal, y: Signal, z: Signal) -> Signal {
        // x enters as a signal; substitution is defined on its node. If x
        // is complemented, occurrences of the *node* get the complement of
        // (y') accordingly: node(x) = x' ⊕ compl ⇒ node(x) := (!y) ⊕ compl.
        let replacement = (!y).complement_if(x.is_complemented());
        let new_z = self.substitute(z, x.node(), replacement);
        self.maj(x, y, new_z)
    }

    /// `Ψ.S` substitution:
    /// `k = M(v, M(v', k[v := u], u), M(v', k[v := u'], u'))`.
    ///
    /// Temporarily inflates the representation to express `k` through a
    /// fresh variable pair `(u, v)`; used by the reshaping phases to
    /// escape local minima. `v` must not be a constant.
    ///
    /// # Panics
    ///
    /// Panics if `v` is a constant signal.
    pub fn psi_s(&mut self, k: Signal, u: Signal, v: Signal) -> Signal {
        assert!(!v.is_constant(), "Ψ.S requires a non-constant v");
        let v_node = v.node();
        let u_adj = u.complement_if(v.is_complemented());
        let k_vu = self.substitute(k, v_node, u_adj);
        let k_vun = self.substitute(k, v_node, !u_adj);
        let left = self.maj(!v, k_vu, u);
        let right = self.maj(!v, k_vun, !u);
        self.maj(v, left, right)
    }

    /// Rebuilds the cone of `root`, replacing every occurrence of node
    /// `from` by the signal `to`. Untouched sub-cones are shared, not
    /// copied. Returns the (possibly identical) new root.
    ///
    /// Runs on the epoch-stamped `SubstScratch`:
    /// the cone order buffer and the `NodeId → Signal` rebuild map are
    /// reused across calls, so the `Ψ.R`/`Ψ.S` inner loops never allocate.
    pub fn substitute(&mut self, root: Signal, from: NodeId, to: Signal) -> Signal {
        if root.node() == from {
            return to.complement_if(root.is_complemented());
        }
        if !self.is_gate(root.node()) {
            return root;
        }
        let mut ss = self.take_subst_scratch();
        ss.begin(self.num_nodes());
        // Collect the cone gates; arena order is topological, so sorting
        // ascending makes children precede parents.
        {
            let mut trav = self.trav_scratch();
            trav.begin(self.num_nodes());
            trav.stack.push(root.node());
            while let Some(n) = trav.stack.pop() {
                if !self.is_gate(n) || !trav.mark(n) {
                    continue;
                }
                ss.order.push(n);
                for c in self.children(n) {
                    trav.stack.push(c.node());
                }
            }
        }
        ss.order.sort_unstable();
        let map_sig = |ss: &crate::scratch::SubstScratch, s: Signal| {
            if s.node() == from {
                to.complement_if(s.is_complemented())
            } else if let Some(ns) = ss.get(s.node()) {
                ns.complement_if(s.is_complemented())
            } else {
                s
            }
        };
        for i in 0..ss.order.len() {
            let n = ss.order[i];
            let [a, b, c] = self.children(n);
            let touches = [a, b, c]
                .iter()
                .any(|s| s.node() == from || ss.get(s.node()).is_some());
            if !touches {
                continue;
            }
            let (na, nb, nc) = (map_sig(&ss, a), map_sig(&ss, b), map_sig(&ss, c));
            let ns = self.maj(na, nb, nc);
            ss.set(n, ns);
        }
        let result = match ss.get(root.node()) {
            Some(ns) => ns.complement_if(root.is_complemented()),
            None => root,
        };
        self.put_subst_scratch(ss);
        result
    }

    /// The gate nodes in the transitive fanin cone of `root`, in
    /// topological (ascending arena) order.
    pub fn cone_gates(&self, root: Signal) -> Vec<NodeId> {
        let mut seen: Vec<NodeId> = Vec::new();
        let mut trav = self.trav_scratch();
        trav.begin(self.num_nodes());
        trav.stack.push(root.node());
        while let Some(n) = trav.stack.pop() {
            if !self.is_gate(n) || !trav.mark(n) {
                continue;
            }
            seen.push(n);
            for c in self.children(n) {
                trav.stack.push(c.node());
            }
        }
        drop(trav);
        seen.sort_unstable();
        seen
    }

    /// Number of gates in the transitive fanin cone of `root`, or `None`
    /// if the cone exceeds `limit` gates. Allocation-free (epoch-marked).
    pub fn cone_size_within(&self, root: Signal, limit: usize) -> Option<usize> {
        let mut trav = self.trav_scratch();
        trav.begin(self.num_nodes());
        trav.stack.push(root.node());
        let mut count = 0usize;
        while let Some(n) = trav.stack.pop() {
            if !self.is_gate(n) || !trav.mark(n) {
                continue;
            }
            count += 1;
            if count > limit {
                return None;
            }
            for c in self.children(n) {
                trav.stack.push(c.node());
            }
        }
        Some(count)
    }

    /// True if node `target` occurs in the transitive fanin cone of
    /// `root` (checking at most `limit` gates; `None` means the limit was
    /// hit without finding it). Allocation-free (epoch-marked).
    pub fn cone_contains(&self, root: Signal, target: NodeId, limit: usize) -> Option<bool> {
        let mut trav = self.trav_scratch();
        trav.begin(self.num_nodes());
        trav.stack.push(root.node());
        let mut steps = 0usize;
        while let Some(n) = trav.stack.pop() {
            if n == target {
                return Some(true);
            }
            if !self.is_gate(n) || !trav.mark(n) {
                continue;
            }
            steps += 1;
            if steps > limit {
                return None;
            }
            for c in self.children(n) {
                trav.stack.push(c.node());
            }
        }
        Some(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig_tt::TruthTable;

    /// Builds a 4-input MIG and returns per-signal truth-table evaluation.
    fn tt_of(mig: &Mig, s: Signal) -> TruthTable {
        let mut m = mig.clone();
        m.add_output("probe", s);
        m.truth_tables().pop().expect("one output")
    }

    fn setup() -> (Mig, Signal, Signal, Signal, Signal) {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let d = mig.add_input("d");
        (mig, a, b, c, d)
    }

    #[test]
    fn omega_a_preserves_function() {
        let (mut mig, x, u, y, z) = setup();
        let inner = mig.maj(y, u, z);
        let outer = mig.maj(x, u, inner);
        let rewritten = mig.omega_a(x, u, inner, z).expect("pattern matches");
        assert_eq!(tt_of(&mig, outer), tt_of(&mig, rewritten));
    }

    #[test]
    fn omega_a_rejects_nonmatching() {
        let (mut mig, x, u, y, z) = setup();
        let inner = mig.maj(y, x, z); // shares x, not u
        assert_eq!(mig.omega_a(x, u, inner, z), None);
        assert_eq!(mig.omega_a(x, u, y, z), None, "inner must be a gate");
    }

    #[test]
    fn omega_d_lr_preserves_function() {
        let (mut mig, x, y, u, v) = setup();
        let z = mig.input(0); // reuse a as z for a 4-var test? use distinct: d
        let _ = z;
        let inner = mig.maj(u, v, x); // z := x reconvergent is fine too
        let outer = mig.maj(x, y, inner);
        let rewritten = mig.omega_d_lr(x, y, inner, x).expect("matches");
        assert_eq!(tt_of(&mig, outer), tt_of(&mig, rewritten));
    }

    #[test]
    fn omega_d_lr_distinct_vars() {
        let (mut mig, x, y, u, v) = setup();
        let inner = mig.maj(u, v, !y);
        let outer = mig.maj(x, !y, inner);
        for keep in [u, v, !y] {
            let rewritten = mig.omega_d_lr(x, !y, inner, keep).expect("matches");
            assert_eq!(tt_of(&mig, outer), tt_of(&mig, rewritten), "keep {keep}");
        }
    }

    #[test]
    fn omega_d_roundtrip() {
        let (mut mig, x, y, u, v) = setup();
        let inner = mig.maj(u, v, !x);
        let outer = mig.maj(x, y, inner);
        let distributed = mig.omega_d_lr(x, y, inner, !x).expect("matches");
        // distributed = M(M(x,y,u), M(x,y,v), x') — the first two fanins
        // share the pair (x,y), so R→L merges back.
        let kids = mig.as_maj(distributed).expect("gate");
        let merged = mig
            .omega_d_rl(kids[0], kids[1], kids[2])
            .or_else(|| mig.omega_d_rl(kids[0], kids[2], kids[1]))
            .or_else(|| mig.omega_d_rl(kids[1], kids[2], kids[0]))
            .expect("some pair shares two fanins");
        assert_eq!(tt_of(&mig, outer), tt_of(&mig, merged));
        assert_eq!(merged, outer, "strashing makes the round trip exact");
    }

    #[test]
    fn omega_d_rl_merges_shared_pair() {
        let (mut mig, x, y, u, v) = setup();
        let p = mig.maj(x, y, u);
        let q = mig.maj(x, y, v);
        let z = mig.input(0);
        let top = mig.maj(p, q, z);
        let merged = mig.omega_d_rl(p, q, z).expect("shares x,y");
        assert_eq!(tt_of(&mig, top), tt_of(&mig, merged));
        // Merged form uses one fewer level of pairing: M(x,y,M(u,v,z)).
        let kids = mig.as_maj(merged).expect("gate");
        assert!(kids.contains(&x) && kids.contains(&y));
    }

    #[test]
    fn psi_c_preserves_function() {
        let (mut mig, x, u, y, z) = setup();
        let inner = mig.maj(y, !u, z);
        let outer = mig.maj(x, u, inner);
        let rewritten = mig.psi_c(x, u, inner).expect("matches");
        assert_eq!(tt_of(&mig, outer), tt_of(&mig, rewritten));
    }

    #[test]
    fn psi_r_preserves_function() {
        let (mut mig, x, y, z, w) = setup();
        // z-cone reconverges on x: M(x, y, M(x, z, w))
        let inner = mig.maj(x, z, w);
        let outer = mig.maj(x, y, inner);
        let rewritten = mig.psi_r(x, y, inner);
        assert_eq!(tt_of(&mig, outer), tt_of(&mig, rewritten));
    }

    #[test]
    fn psi_r_complemented_occurrence() {
        let (mut mig, x, y, z, w) = setup();
        let inner = mig.maj(!x, z, w);
        let outer = mig.maj(x, y, inner);
        let rewritten = mig.psi_r(x, y, inner);
        assert_eq!(tt_of(&mig, outer), tt_of(&mig, rewritten));
        // Paper Fig. 2(d): M(x, y, M(x', z, w)) = M(x, y, M(y, z, w)).
        let expected_inner = mig.maj(y, z, w);
        let expected = mig.maj(x, y, expected_inner);
        assert_eq!(rewritten, expected);
    }

    #[test]
    fn psi_r_on_complemented_x() {
        let (mut mig, x, y, z, w) = setup();
        let inner = mig.maj(x, z, w);
        let outer = mig.maj(!x, y, inner);
        let rewritten = mig.psi_r(!x, y, inner);
        assert_eq!(tt_of(&mig, outer), tt_of(&mig, rewritten));
    }

    #[test]
    fn psi_s_preserves_function() {
        let (mut mig, a, b, c, d) = setup();
        let inner = mig.maj(a, b, c);
        let k = mig.maj(inner, c, d);
        // Substitute pair (u=d, v=a).
        let rewritten = mig.psi_s(k, d, a);
        assert_eq!(tt_of(&mig, k), tt_of(&mig, rewritten));
        // And with complemented / constant u.
        let r2 = mig.psi_s(k, !b, a);
        assert_eq!(tt_of(&mig, k), tt_of(&mig, r2));
    }

    #[test]
    fn psi_s_on_complemented_v() {
        let (mut mig, a, b, c, d) = setup();
        let inner = mig.maj(a, b, c);
        let k = mig.maj(inner, c, d);
        let rewritten = mig.psi_s(k, b, !a);
        assert_eq!(tt_of(&mig, k), tt_of(&mig, rewritten));
    }

    #[test]
    fn substitute_rebuilds_cone() {
        let (mut mig, a, b, c, d) = setup();
        let p = mig.and(a, b);
        let q = mig.or(p, c);
        let r = mig.maj(q, p, d);
        // Replace node b by d in r's cone.
        let r2 = mig.substitute(r, b.node(), d);
        let expect_p = mig.and(a, d);
        let expect_q = mig.or(expect_p, c);
        let expect_r = mig.maj(expect_q, expect_p, d);
        assert_eq!(r2, expect_r);
    }

    #[test]
    fn substitute_identity_when_absent() {
        let (mut mig, a, b, c, d) = setup();
        let p = mig.and(a, b);
        let r = mig.maj(p, c, a);
        let r2 = mig.substitute(r, d.node(), !c);
        assert_eq!(r, r2, "no occurrence ⇒ same signal");
    }

    #[test]
    fn substitute_at_root() {
        let (mut mig, a, b, _, _) = setup();
        assert_eq!(mig.substitute(a, a.node(), b), b);
        assert_eq!(mig.substitute(!a, a.node(), b), !b);
    }

    #[test]
    fn cone_queries() {
        let (mut mig, a, b, c, d) = setup();
        let p = mig.and(a, b);
        let q = mig.or(p, c);
        assert_eq!(mig.cone_contains(q, a.node(), 100), Some(true));
        assert_eq!(mig.cone_contains(q, d.node(), 100), Some(false));
        assert_eq!(mig.cone_contains(q, p.node(), 100), Some(true));
        assert_eq!(mig.cone_gates(q).len(), 2);
        assert_eq!(mig.cone_contains(q, d.node(), 0), None, "limit hit");
    }

    #[test]
    fn fig2a_manual_size_optimization() {
        // Paper Fig. 2(a): h = M(x, M(x, z', w), M(x, y, z)) reduces to x.
        let mut mig = Mig::new("fig2a");
        let x = mig.add_input("x");
        let y = mig.add_input("y");
        let z = mig.add_input("z");
        let w = mig.add_input("w");
        let m1 = mig.maj(x, !z, w);
        let m2 = mig.maj(x, y, z);
        let h = mig.maj(x, m1, m2);
        // Sanity: h is logically x.
        assert_eq!(tt_of(&mig, h), tt_of(&mig, x));
        // Ω.A: swap w out of m1 (shared child x between outer and m1):
        // M(m2, x, M(z', x, w)) = M(w, x, M(z', x, m2))
        let step1 = mig.omega_a(m2, x, m1, w).expect("m1 shares x");
        assert_eq!(tt_of(&mig, step1), tt_of(&mig, x));
        // Ψ.R on the new inner node M(z', x, m2): replace x by z inside m2
        // (x paired with z' ⇒ x := (z')' = z), giving M(z', x, M(z,y,z)) =
        // M(z', x, z) = x; the trivial rules collapse everything.
        let inner = mig
            .as_maj(step1)
            .expect("gate")
            .into_iter()
            .find(|&s| mig.as_maj(s).is_some())
            .expect("inner majority");
        let kids = mig.as_maj(inner).expect("inner is a gate");
        let m2_pos = kids.iter().position(|&s| s == m2).expect("m2 still inside");
        let (xs, zs) = match m2_pos {
            0 => (kids[1], kids[2]),
            1 => (kids[0], kids[2]),
            _ => (kids[0], kids[1]),
        };
        // Choose roles so the substituted pair is (x, z').
        let (xr, yr) = if xs == x { (xs, zs) } else { (zs, xs) };
        // psi_r returns the reassembled M(x, z', m2[x:=z]) = M(x, z', z) = x.
        let new_inner = mig.psi_r(xr, yr, kids[m2_pos]);
        let top = mig.maj(w, x, new_inner);
        assert_eq!(top, x, "Fig. 2(a): h collapses to x");
    }
}
