//! Epoch-marked traversal scratchpads.
//!
//! Every bounded-cone query of the optimization inner loops
//! (`cone_size_within`, `cone_contains`, `substitute`, …) needs a "have I
//! visited this node" set. Allocating a fresh `HashSet` per query — several
//! per node per pass — dominated the optimizer's profile, so the set is
//! replaced by the classic ABC-style *travId* scheme: one `u32` stamp per
//! arena slot plus a generation counter. A node is visited iff its stamp
//! equals the current generation; starting a new traversal is a single
//! counter increment, and the buffers are grown lazily and reused forever.
//!
//! Generation `0` is reserved as "never visited" so freshly grown stamp
//! slots are automatically unvisited. When the counter would wrap past
//! `u32::MAX` the stamps are zeroed once and the generation restarts at 1 —
//! traversals stay correct across rollover (see the tests below).

use crate::{NodeId, Signal};

/// A small pool of reusable scratch states, one per worker thread.
///
/// The parallel rewriting engine hands each `std::thread::scope` worker
/// its own scratch value (canonization cache, reference-count copy, cut
/// buffers). The pool keeps those values alive between sweeps and
/// between optimization calls, so spinning up `N` workers allocates only
/// on the very first sweep — the same recycling discipline `OptBuffers`
/// applies to arenas.
///
/// Panic safety: recycling scratch from a worker whose stint was caught
/// by `catch_unwind` is fine. Scratch values carry no cross-call
/// invariants — result buffers are cleared at the start of every stint,
/// memo caches hold pure-function entries, and the epoch scheme below
/// makes a half-finished traversal mark set invisible to the next
/// `begin`.
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    items: Vec<T>,
}

/// Upper bound on pooled scratch states (matches the worker cap of the
/// rewriting engine; anything beyond it would never be reused).
const POOL_CAP: usize = 16;

impl<T: Default> ScratchPool<T> {
    /// Takes `n` scratch values, reusing pooled ones first and
    /// defaulting the rest.
    pub fn take_n(&mut self, n: usize) -> Vec<T> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            out.push(self.items.pop().unwrap_or_default());
        }
        out
    }

    /// Returns scratch values to the pool for the next sweep.
    pub fn put_all(&mut self, items: Vec<T>) {
        for item in items {
            if self.items.len() < POOL_CAP {
                self.items.push(item);
            }
        }
    }
}

/// Reusable epoch-marking scratchpad for graph traversals.
///
/// One instance supports one traversal at a time: [`TravScratch::begin`]
/// opens a new generation, invalidating all marks of the previous one in
/// O(1).
#[derive(Debug, Clone, Default)]
pub struct TravScratch {
    stamp: Vec<u32>,
    epoch: u32,
    /// Reusable DFS stack, cleared by `begin`.
    pub stack: Vec<NodeId>,
}

impl TravScratch {
    /// Starts a new traversal over an arena of `n` nodes: bumps the
    /// generation (handling `u32` rollover) and ensures capacity.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            // Rollover: a single O(n) reset buys another 2^32 - 1 epochs.
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.stack.clear();
    }

    /// Marks `node` visited in the current generation. Returns `true` if
    /// it was not yet visited (i.e. the caller should process it).
    #[inline]
    pub fn mark(&mut self, node: NodeId) -> bool {
        let slot = &mut self.stamp[node.index()];
        if *slot == self.epoch {
            false
        } else {
            *slot = self.epoch;
            true
        }
    }

    /// True if `node` was visited in the current generation.
    #[cfg(test)]
    pub fn is_marked(&self, node: NodeId) -> bool {
        self.stamp[node.index()] == self.epoch
    }

    /// The current generation counter (exposed for the rollover tests).
    #[cfg(test)]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Forces the generation counter, for exercising rollover in tests.
    #[cfg(test)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

/// Scratch state for [`Mig::substitute`](crate::Mig::substitute): an
/// epoch-stamped sparse `NodeId → Signal` map plus a reusable topological
/// order buffer, replacing the per-call `HashMap` + `Vec` the cone rebuild
/// used to allocate.
#[derive(Debug, Clone, Default)]
pub struct SubstScratch {
    stamp: Vec<u32>,
    value: Vec<Signal>,
    epoch: u32,
    /// Cone gates in ascending (topological) arena order, filled by the
    /// caller and cleared by `begin`.
    pub order: Vec<NodeId>,
    /// Reusable DFS stack for collecting the cone.
    pub stack: Vec<NodeId>,
}

impl SubstScratch {
    /// Starts a new substitution over an arena of `n` nodes.
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.value.resize(n, Signal::FALSE);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.order.clear();
        self.stack.clear();
    }

    /// Records that `node` rebuilds to `signal`.
    #[inline]
    pub fn set(&mut self, node: NodeId, signal: Signal) {
        self.stamp[node.index()] = self.epoch;
        self.value[node.index()] = signal;
    }

    /// The rebuilt signal for `node`, if one was recorded this epoch.
    #[inline]
    pub fn get(&self, node: NodeId) -> Option<Signal> {
        if self.stamp[node.index()] == self.epoch {
            Some(self.value[node.index()])
        } else {
            None
        }
    }

    /// Forces the generation counter, for exercising rollover in tests.
    #[cfg(test)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_reset_per_epoch() {
        let mut sc = TravScratch::default();
        sc.begin(4);
        let n = NodeId::from_index(2);
        assert!(sc.mark(n));
        assert!(!sc.mark(n), "second mark in same epoch");
        assert!(sc.is_marked(n));
        sc.begin(4);
        assert!(!sc.is_marked(n), "new epoch clears marks in O(1)");
        assert!(sc.mark(n));
    }

    #[test]
    fn lazy_growth_keeps_new_slots_unmarked() {
        let mut sc = TravScratch::default();
        sc.begin(2);
        assert!(sc.mark(NodeId::from_index(1)));
        sc.begin(8);
        assert!(!sc.is_marked(NodeId::from_index(5)));
        assert!(sc.mark(NodeId::from_index(5)));
    }

    #[test]
    fn epoch_rollover_resets_stamps() {
        let mut sc = TravScratch::default();
        sc.begin(4);
        sc.force_epoch(u32::MAX - 1);
        let n = NodeId::from_index(1);
        // Epoch MAX-1: mark survives within the epoch.
        assert!(sc.mark(n));
        sc.begin(4); // → u32::MAX
        assert_eq!(sc.epoch(), u32::MAX);
        assert!(!sc.is_marked(n));
        assert!(sc.mark(n));
        sc.begin(4); // rollover: stamps zeroed, epoch restarts at 1
        assert_eq!(sc.epoch(), 1);
        assert!(!sc.is_marked(n), "stale MAX stamp must not alias epoch 1");
        assert!(sc.mark(n));
        sc.begin(4);
        assert_eq!(sc.epoch(), 2);
        assert!(!sc.is_marked(n));
    }

    #[test]
    fn subst_map_is_epoch_scoped() {
        let mut ss = SubstScratch::default();
        ss.begin(4);
        let n = NodeId::from_index(3);
        assert_eq!(ss.get(n), None);
        ss.set(n, Signal::TRUE);
        assert_eq!(ss.get(n), Some(Signal::TRUE));
        ss.begin(4);
        assert_eq!(ss.get(n), None, "new epoch forgets mappings");
    }

    #[test]
    fn subst_rollover_forgets_mappings() {
        let mut ss = SubstScratch::default();
        ss.begin(2);
        ss.force_epoch(u32::MAX);
        ss.set(NodeId::from_index(1), Signal::TRUE);
        ss.begin(2); // rollover
        assert_eq!(ss.get(NodeId::from_index(1)), None);
    }
}
