//! Edges of a Majority-Inverter Graph: node references with an optional
//! complement attribute.

use std::fmt;

/// Index of a node inside a [`Mig`](crate::Mig) arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The constant-0 node, present in every MIG.
    pub const CONST0: NodeId = NodeId(0);

    /// The raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw arena index.
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("MIG limited to 2^31 nodes"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A directed edge in an MIG: a [`NodeId`] plus a complement attribute.
///
/// This is the paper's "regular/complemented edge": inverters are not nodes
/// but markers on edges. The encoding packs the node index and the
/// complement bit into a single `u32`, so signals are cheap to copy,
/// compare and hash.
///
/// # Example
///
/// ```
/// use mig_core::Signal;
///
/// let t = Signal::TRUE;
/// assert_eq!(t, Signal::FALSE.complement());
/// assert!(t.is_complemented() && t.is_constant());
/// assert_eq!(t.complement(), Signal::FALSE);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal(u32);

impl Signal {
    /// The constant-0 signal (regular edge to the constant node).
    pub const FALSE: Signal = Signal(0);
    /// The constant-1 signal (complemented edge to the constant node).
    pub const TRUE: Signal = Signal(1);

    /// Builds a signal from a node and a complement attribute.
    pub fn new(node: NodeId, complemented: bool) -> Self {
        Signal(node.0 << 1 | complemented as u32)
    }

    /// Builds the constant signal of the given logic value.
    pub fn constant(value: bool) -> Self {
        if value {
            Signal::TRUE
        } else {
            Signal::FALSE
        }
    }

    /// The node this signal points at.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge carries the complement attribute.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// True if this is one of the two constant signals.
    pub fn is_constant(self) -> bool {
        self.node() == NodeId::CONST0
    }

    /// The complemented version of this signal.
    #[must_use]
    pub fn complement(self) -> Signal {
        Signal(self.0 ^ 1)
    }

    /// Complements the signal iff `c` is true.
    #[must_use]
    pub fn complement_if(self, c: bool) -> Signal {
        Signal(self.0 ^ c as u32)
    }

    /// The regular (non-complemented) version of this signal.
    #[must_use]
    pub fn regular(self) -> Signal {
        Signal(self.0 & !1)
    }

    /// Raw packed encoding (node << 1 | complement); useful as a map key.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl std::ops::Not for Signal {
    type Output = Signal;

    fn not(self) -> Signal {
        self.complement()
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_roundtrip() {
        let n = NodeId::from_index(1234);
        let s = Signal::new(n, true);
        assert_eq!(s.node(), n);
        assert!(s.is_complemented());
        assert_eq!(s.regular(), Signal::new(n, false));
    }

    #[test]
    fn complement_involution() {
        let s = Signal::new(NodeId::from_index(7), false);
        assert_eq!(s.complement().complement(), s);
        assert_eq!(!!s, s);
        assert_ne!(!s, s);
    }

    #[test]
    fn constants() {
        assert!(Signal::FALSE.is_constant());
        assert!(Signal::TRUE.is_constant());
        assert_eq!(Signal::TRUE, !Signal::FALSE);
        assert_eq!(Signal::constant(true), Signal::TRUE);
        assert_eq!(Signal::constant(false), Signal::FALSE);
    }

    #[test]
    fn complement_if() {
        let s = Signal::new(NodeId::from_index(3), false);
        assert_eq!(s.complement_if(false), s);
        assert_eq!(s.complement_if(true), !s);
    }

    #[test]
    fn debug_format() {
        let s = Signal::new(NodeId::from_index(5), true);
        assert_eq!(format!("{s:?}"), "!n5");
        assert_eq!(format!("{}", !s), "n5");
    }
}
