//! Conversions between [`Mig`] and the generic gate-level [`Network`].
//!
//! Importing a network performs the AOIG → MIG transposition of the paper
//! (Theorem 3.1): `AND(a,b) = M(a,b,0)` and `OR(a,b) = M(a,b,1)`, with
//! inverters becoming complemented edges. Exporting produces a network of
//! MAJ gates (AND/OR where a fanin is constant) plus explicit inverters.

use crate::{Mig, Signal};
use mig_netlist::{GateId, GateKind, Network};
use std::collections::HashMap;

impl Mig {
    /// Imports a gate-level network, transposing every Boolean primitive
    /// into majority nodes.
    ///
    /// # Panics
    ///
    /// Panics if the network contains gates with malformed fanin counts
    /// (cannot happen for networks built through the public API).
    pub fn from_network(net: &Network) -> Mig {
        // Pre-size the arena and strash from the gate count: XOR/MUX
        // primitives expand to up to three majority nodes each, so 2×
        // covers the transposition without doubling storms on
        // million-gate imports.
        let mut mig = Mig::with_capacity(
            net.name().to_string(),
            net.num_inputs(),
            net.num_logic_gates() * 2,
        );
        let mut map: HashMap<GateId, Signal> = HashMap::with_capacity(net.num_gates());
        for (i, &id) in net.inputs().iter().enumerate() {
            let s = mig.add_input(net.input_name(i).to_string());
            map.insert(id, s);
        }
        for (id, gate) in net.iter() {
            if gate.kind() == GateKind::Input {
                continue;
            }
            let f: Vec<Signal> = gate.fanins().iter().map(|g| map[g]).collect();
            let s = match gate.kind() {
                GateKind::Const0 => Signal::FALSE,
                GateKind::Const1 => Signal::TRUE,
                GateKind::Input => unreachable!("filtered above"),
                GateKind::Buf => f[0],
                GateKind::Not => !f[0],
                GateKind::And => {
                    let mut acc = f[0];
                    for &x in &f[1..] {
                        acc = mig.and(acc, x);
                    }
                    acc
                }
                GateKind::Or => {
                    let mut acc = f[0];
                    for &x in &f[1..] {
                        acc = mig.or(acc, x);
                    }
                    acc
                }
                GateKind::Xor => {
                    let mut acc = f[0];
                    for &x in &f[1..] {
                        acc = mig.xor(acc, x);
                    }
                    acc
                }
                GateKind::Xnor => !mig.xor(f[0], f[1]),
                GateKind::Nand => !mig.and(f[0], f[1]),
                GateKind::Nor => !mig.or(f[0], f[1]),
                GateKind::Mux => mig.mux(f[0], f[1], f[2]),
                GateKind::Maj => mig.maj(f[0], f[1], f[2]),
            };
            map.insert(id, s);
        }
        for (name, gate) in net.outputs() {
            mig.add_output(name.clone(), map[gate]);
        }
        mig
    }

    /// Exports the MIG as a gate-level network of MAJ gates, using AND/OR
    /// where one fanin is constant, and explicit NOT gates for complemented
    /// edges.
    pub fn to_network(&self) -> Network {
        let mut net = Network::new(self.name().to_string());
        let mut node_map: Vec<Option<GateId>> = vec![None; self.num_nodes()];
        let mut inverters: HashMap<GateId, GateId> = HashMap::new();
        for i in 0..self.num_inputs() {
            node_map[i + 1] = Some(net.add_input(self.input_name(i).to_string()));
        }
        let mark = self.reach_ref();

        fn resolve(
            net: &mut Network,
            node_map: &[Option<GateId>],
            inverters: &mut HashMap<GateId, GateId>,
            s: Signal,
        ) -> GateId {
            let base = if s.is_constant() {
                // Constants may not be pre-mapped; create on demand.
                net.constant(false)
            } else {
                node_map[s.node().index()].expect("children precede parents")
            };
            if s.is_complemented() {
                *inverters
                    .entry(base)
                    .or_insert_with(|| net.add_gate(GateKind::Not, vec![base]))
            } else {
                base
            }
        }

        for node in self.gate_ids() {
            if !mark[node.index()] {
                continue;
            }
            let [a, b, c] = self.children(node);
            // Render AND/OR shapes with constant fanins as 2-input gates.
            let consts: Vec<Signal> = [a, b, c].into_iter().filter(|s| s.is_constant()).collect();
            let id = if consts.len() == 1 {
                let mut others = [a, b, c].into_iter().filter(|s| !s.is_constant());
                let x = others.next().expect("two non-constant fanins");
                let y = others.next().expect("two non-constant fanins");
                let gx = resolve(&mut net, &node_map, &mut inverters, x);
                let gy = resolve(&mut net, &node_map, &mut inverters, y);
                if consts[0] == Signal::FALSE {
                    net.add_gate(GateKind::And, vec![gx, gy])
                } else {
                    net.add_gate(GateKind::Or, vec![gx, gy])
                }
            } else {
                let ga = resolve(&mut net, &node_map, &mut inverters, a);
                let gb = resolve(&mut net, &node_map, &mut inverters, b);
                let gc = resolve(&mut net, &node_map, &mut inverters, c);
                net.add_gate(GateKind::Maj, vec![ga, gb, gc])
            };
            node_map[node.index()] = Some(id);
        }
        for (name, s) in self.outputs() {
            let id = resolve(&mut net, &node_map, &mut inverters, *s);
            net.set_output(name.clone(), id);
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mig_netlist::parse_verilog;

    fn check_equal(net: &Network, mig: &Mig) {
        let n = net.num_inputs();
        assert!(n <= 10, "test helper uses exhaustive evaluation");
        for bits in 0..(1u32 << n) {
            let assign: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
            assert_eq!(net.eval(&assign), mig.eval(&assign), "assign {bits:b}");
        }
    }

    #[test]
    fn import_all_primitives() {
        let src = "module t(a,b,c,y0,y1,y2,y3,y4,y5,y6,y7);\n\
            input a,b,c; output y0,y1,y2,y3,y4,y5,y6,y7;\n\
            assign y0 = a & b;\n\
            assign y1 = a | b;\n\
            assign y2 = a ^ b;\n\
            assign y3 = a ~^ b;\n\
            assign y4 = ~(a & b);\n\
            assign y5 = ~(a | b);\n\
            assign y6 = c ? a : b;\n\
            assign y7 = maj(a, b, c);\n\
            endmodule";
        let net = parse_verilog(src).expect("parses");
        let mig = Mig::from_network(&net);
        check_equal(&net, &mig);
    }

    #[test]
    fn fig1a_xor3_aoig_transposition() {
        // Paper Fig. 1(a): f = x ⊕ y ⊕ z from its optimal AOIG.
        let src = "module f(x,y,z,f); input x,y,z; output f;\n\
            wire xy; assign xy = x ^ y; assign f = xy ^ z; endmodule";
        let net = parse_verilog(src).expect("parses");
        let mig = Mig::from_network(&net);
        check_equal(&net, &mig);
        // Two XORs cost 3 MIG nodes each in the AOIG transposition.
        assert_eq!(mig.size(), 6);
    }

    #[test]
    fn fig1b_shared_and_or() {
        // Paper Fig. 1(b): g = x(y + uv).
        let src = "module g(x,y,u,v,g); input x,y,u,v; output g;\n\
            assign g = x & (y | (u & v)); endmodule";
        let net = parse_verilog(src).expect("parses");
        let mig = Mig::from_network(&net);
        check_equal(&net, &mig);
        assert_eq!(mig.size(), 3, "three AOIG gates → three MIG nodes");
        assert_eq!(mig.depth(), 3);
    }

    #[test]
    fn export_round_trip() {
        let mut mig = Mig::new("rt");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, !b, c);
        let x = mig.xor(m, a);
        mig.add_output("y", !x);
        mig.add_output("z", m);
        let net = mig.to_network();
        check_equal(&net, &mig);
        let back = Mig::from_network(&net);
        assert!(mig.equiv(&back, 4));
    }

    #[test]
    fn export_uses_and_or_for_constant_fanins() {
        let mut mig = Mig::new("c");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let g = mig.and(a, b);
        let h = mig.or(g, b);
        mig.add_output("y", h);
        let net = mig.to_network();
        let kinds: Vec<GateKind> = net.iter().map(|(_, g)| g.kind()).collect();
        assert!(kinds.contains(&GateKind::And));
        assert!(kinds.contains(&GateKind::Or));
        assert!(!kinds.contains(&GateKind::Maj));
        check_equal(&net, &mig);
    }

    #[test]
    fn constant_output_exports() {
        let mut mig = Mig::new("k");
        let _a = mig.add_input("a");
        mig.add_output("zero", Signal::FALSE);
        mig.add_output("one", Signal::TRUE);
        let net = mig.to_network();
        assert_eq!(net.eval(&[false]), vec![false, true]);
        assert_eq!(net.eval(&[true]), vec![false, true]);
    }
}
