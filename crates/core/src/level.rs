//! Bounded dynamic level maintenance (the tentpole of the million-node
//! scale work; DESIGN.md §14).
//!
//! Every depth-aware pass needs per-node logic levels and the graph
//! depth. The [`Mig`] arena keeps per-node levels exact *at
//! construction* (a node's level is fixed when it is hashed in, and the
//! arena is append-only within one lifetime), but consumers used to
//! treat levels as something to re-derive globally: sorting a whole
//! worklist per sweep, rescanning all outputs per depth query, copying
//! level arrays per pass. At MCNC scale (≤40k nodes) that O(n) work per
//! local edit disappears in the noise; at 10⁶ nodes it dominates.
//!
//! [`LevelMap`] is the bounded alternative: a level mirror keyed to the
//! arena's `(generation, mutation stamp, length)` identity. Re-binding
//! it after a batch of edits repairs the mirror by processing only the
//! **dirty frontier** — the suffix of nodes appended since the last
//! bind, walked in arena order (which is topological, so every fanin
//! level is final before its fanout is touched). A rewrite step that
//! appends k nodes therefore costs O(k) level maintenance, not O(n).
//! Two situations fall back to a global resync, exactly as the bounded
//! dynamic level maintenance literature prescribes:
//!
//! * the arena identity changed lineage — a different generation means
//!   the arena was truncated/rebuilt (or is a different graph), so the
//!   tracked prefix can no longer be trusted;
//! * the frontier is no longer "local" — when the appended fraction
//!   exceeds half the graph (tunable via
//!   [`LevelMap::set_global_fraction`]), one O(n) copy is cheaper than
//!   pretending the edit was incremental.
//!
//! The slack bound ε (set by [`LevelMap::with_epsilon`]) governs the
//! *depth summary*: output redirections can lower the depth without
//! touching any node level, and detecting that needs an O(outputs)
//! rescan. The rescan is lazy — binds only mark the summary deferred,
//! and [`LevelMap::depth`] rescans once the deferral count exceeds ε.
//! With ε = 0 (the setting every optimization pass uses) every depth
//! *query* after an edit sees a fresh rescan, so observable depths are
//! exact and pass decisions are bit-identical with or without the map,
//! while a commit loop that binds k times between queries pays one
//! rescan instead of k. With ε > 0 a query may serve a depth up to ε
//! binds stale, bounding the summary staleness for monitoring-style
//! consumers. Per-node levels are exact at every ε.

use crate::{Mig, NodeId, Signal};

/// Running counters of the maintenance work a [`LevelMap`] performed,
/// for the bench harness's sub-O(n) evidence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelStats {
    /// Binds that found the mirror already in sync (stamp match).
    pub noop_binds: u64,
    /// Binds repaired by dirty-frontier catch-up over the appended
    /// suffix.
    pub incremental_repairs: u64,
    /// Total nodes whose level was computed by catch-up (the bounded
    /// work; compare against `global_nodes` for the O(n) work avoided).
    pub repaired_nodes: u64,
    /// Binds that fell back to a global resync.
    pub global_rebuilds: u64,
    /// Total nodes copied by global resyncs.
    pub global_nodes: u64,
    /// Depth-summary rescans (O(outputs) each).
    pub depth_rescans: u64,
    /// Depth queries served from the (possibly ε-stale) summary.
    pub depth_queries: u64,
}

impl LevelStats {
    /// Nodes of level work per repairing bind — the "bounded work per
    /// accepted rewrite" number EXPERIMENTS.md reports. Global resyncs
    /// are excluded: they are the measured fallback, not the steady
    /// state.
    pub fn nodes_per_repair(&self) -> f64 {
        if self.incremental_repairs == 0 {
            0.0
        } else {
            self.repaired_nodes as f64 / self.incremental_repairs as f64
        }
    }
}

/// A level mirror with bounded repair (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct LevelMap {
    /// Mirrored per-node levels; index = arena node index.
    levels: Vec<u32>,
    /// Arena-lifetime id the mirror tracks ([`Mig::generation`]).
    generation: u64,
    /// Mutation stamp of the last synced state (0 = never bound).
    stamp: u64,
    /// Cached depth summary (max level over outputs at the last rescan).
    depth: u32,
    /// Binds since the last depth rescan.
    deferred: u32,
    /// Slack bound ε: how many binds may serve a stale depth summary.
    epsilon: u32,
    /// Appended-fraction threshold above which catch-up degrades to a
    /// global resync (appended > fraction · total).
    global_fraction: f64,
    stats: LevelStats,
}

impl Default for LevelMap {
    fn default() -> Self {
        Self::new()
    }
}

impl LevelMap {
    /// An exact map: ε = 0 (depth rescanned on every bind) and global
    /// fallback once more than half the graph is freshly appended.
    pub fn new() -> Self {
        LevelMap {
            levels: Vec::new(),
            generation: 0,
            stamp: 0,
            depth: 0,
            deferred: 0,
            epsilon: 0,
            global_fraction: 0.5,
            stats: LevelStats::default(),
        }
    }

    /// A map whose depth summary may lag by up to `epsilon` binds.
    pub fn with_epsilon(epsilon: u32) -> Self {
        LevelMap {
            epsilon,
            ..Self::new()
        }
    }

    /// The configured slack bound ε.
    pub fn epsilon(&self) -> u32 {
        self.epsilon
    }

    /// Sets the appended-fraction threshold for the global fallback
    /// (clamped to (0, 1]).
    pub fn set_global_fraction(&mut self, fraction: f64) {
        self.global_fraction = fraction.clamp(f64::EPSILON, 1.0);
    }

    /// The maintenance-work counters accumulated so far.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Drains the counters (e.g. per benchmark circuit).
    pub fn take_stats(&mut self) -> LevelStats {
        std::mem::take(&mut self.stats)
    }

    /// Synchronizes the mirror with `mig`, doing bounded work when the
    /// arena only grew since the last bind. Every query method requires
    /// a preceding bind against the same graph state.
    pub fn bind(&mut self, mig: &Mig) {
        let n = mig.num_nodes();
        if self.generation == mig.generation() && self.stamp == mig.mutation_stamp() {
            debug_assert_eq!(self.levels.len(), n);
            self.stats.noop_binds += 1;
            return;
        }
        let appended_ok = self.generation == mig.generation()
            && n >= self.levels.len()
            && ((n - self.levels.len()) as f64) <= self.global_fraction * n as f64;
        if appended_ok {
            self.catch_up(mig);
        } else {
            self.resync(mig);
        }
        self.stamp = mig.mutation_stamp();
        self.generation = mig.generation();
        if appended_ok {
            // The O(outputs) summary rescan is deferred to the next
            // [`depth`](Self::depth) query: a commit loop binds once per
            // accepted rewrite but queries the depth rarely (if ever),
            // so rescanning eagerly would do millions of rescans for a
            // handful of reads. The counter keeps the ε staleness
            // accounting identical to an eager rescan.
            self.deferred = self.deferred.saturating_add(1);
        } else {
            // A global resync already paid O(n); the O(outputs) rescan
            // is noise next to it, and an exact summary after a resync
            // keeps the ε staleness bound anchored to incremental binds.
            self.rescan_depth(mig);
        }
    }

    /// Dirty-frontier repair: the frontier is exactly the appended
    /// suffix `tracked_len..n`. Arena order is topological, so one
    /// ascending pass settles every frontier node from already-final
    /// fanin levels — the queue never revisits a node and never touches
    /// the tracked prefix (bounded work, O(appended)).
    fn catch_up(&mut self, mig: &Mig) {
        let start = self.levels.len();
        let n = mig.num_nodes();
        if start == n {
            // Stamp moved without growth (output redirect): only the
            // depth summary may be stale, no node work.
            return;
        }
        self.levels.reserve(n - start);
        for i in start..n {
            let node = NodeId::from_index(i);
            let lvl = if mig.is_gate(node) {
                let repaired = 1 + mig
                    .children(node)
                    .iter()
                    .map(|s| self.levels[s.node().index()])
                    .max()
                    .expect("three children");
                debug_assert_eq!(repaired, mig.level_of(node), "mirror diverged at {node}");
                repaired
            } else {
                0
            };
            self.levels.push(lvl);
        }
        self.stats.incremental_repairs += 1;
        self.stats.repaired_nodes += (n - start) as u64;
    }

    /// Global fallback: one O(n) copy of the arena's level array.
    fn resync(&mut self, mig: &Mig) {
        self.levels.clear();
        self.levels.extend(mig.node_levels());
        self.stats.global_rebuilds += 1;
        self.stats.global_nodes += mig.num_nodes() as u64;
    }

    /// Recomputes the depth summary from the output levels.
    fn rescan_depth(&mut self, mig: &Mig) {
        self.depth = mig
            .outputs()
            .iter()
            .map(|&(_, s)| self.levels[s.node().index()])
            .max()
            .unwrap_or(0);
        self.deferred = 0;
        self.stats.depth_rescans += 1;
    }

    /// Number of nodes the mirror currently tracks.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// True if the mirror has never been bound (or tracks an empty
    /// arena, which cannot occur for a real `Mig`).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Level of `node` in the bound graph state.
    #[inline]
    pub fn level_of(&self, node: NodeId) -> u32 {
        self.levels[node.index()]
    }

    /// Level of the node `signal` points at.
    #[inline]
    pub fn level_of_signal(&self, signal: Signal) -> u32 {
        self.levels[signal.node().index()]
    }

    /// The mirrored level array (index = arena node index).
    pub fn levels(&self) -> &[u32] {
        &self.levels
    }

    /// The depth summary for the bound graph: exact at ε = 0, at most ε
    /// binds stale otherwise. `mig` must be the graph of the last bind
    /// (the rescan, when the ε slack is exhausted, reads its outputs).
    pub fn depth(&mut self, mig: &Mig) -> u32 {
        debug_assert_eq!(self.stamp, mig.mutation_stamp(), "query without bind");
        self.stats.depth_queries += 1;
        if self.deferred > self.epsilon {
            self.rescan_depth(mig);
        }
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opt::OptBuffers;

    fn assert_exact(lm: &LevelMap, mig: &Mig) {
        // From-scratch topological recompute, independent of the arena's
        // own level array.
        let mut fresh = vec![0u32; mig.num_nodes()];
        for node in mig.gate_ids() {
            fresh[node.index()] = 1 + mig
                .children(node)
                .iter()
                .map(|s| fresh[s.node().index()])
                .max()
                .unwrap();
        }
        assert_eq!(lm.levels(), fresh.as_slice(), "mirror vs from-scratch");
    }

    #[test]
    fn bind_tracks_appends_incrementally() {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, b, c);
        mig.add_output("y", m);
        let mut lm = LevelMap::new();
        lm.bind(&mig);
        assert_exact(&lm, &mig);
        assert_eq!(lm.depth(&mig), 1);
        // Append a cone; the second bind repairs only the suffix.
        let x = mig.xor(m, a);
        mig.add_output("z", x);
        lm.bind(&mig);
        assert_exact(&lm, &mig);
        assert_eq!(lm.depth(&mig), 3);
        let stats = lm.stats();
        assert!(stats.incremental_repairs >= 1);
        assert_eq!(stats.global_rebuilds, 1, "only the first bind is global");
    }

    #[test]
    fn rebind_same_state_is_noop() {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let m = mig.and(a, b);
        mig.add_output("y", m);
        let mut lm = LevelMap::new();
        lm.bind(&mig);
        let before = lm.stats();
        lm.bind(&mig);
        lm.bind(&mig);
        let after = lm.stats();
        assert_eq!(after.noop_binds, before.noop_binds + 2);
        assert_eq!(after.repaired_nodes, before.repaired_nodes);
        assert_eq!(after.global_rebuilds, before.global_rebuilds);
    }

    #[test]
    fn generation_change_forces_global_resync() {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let m = mig.and(a, b);
        mig.add_output("y", m);
        let mut lm = LevelMap::new();
        lm.bind(&mig);
        // A clone has a fresh generation: its shared prefix must not be
        // trusted (the two arenas may diverge at the same length).
        let clone = mig.clone();
        let globals_before = lm.stats().global_rebuilds;
        lm.bind(&clone);
        assert_eq!(lm.stats().global_rebuilds, globals_before + 1);
        assert_exact(&lm, &clone);
    }

    #[test]
    fn epsilon_defers_depth_rescan_but_levels_stay_exact() {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let c = mig.add_input("c");
        let m = mig.maj(a, b, c);
        mig.add_output("y", m);
        let mut lm = LevelMap::with_epsilon(2);
        lm.bind(&mig);
        let d0 = lm.depth(&mig);
        // Deepen the output; with ε=2 the first two rebinds may serve
        // the stale summary, the third must be exact.
        let mut x = m;
        let mut exact = Vec::new();
        for _ in 0..3 {
            x = mig.xor(x, a);
            mig.set_output(0, x);
            lm.bind(&mig);
            assert_exact(&lm, &mig); // per-node levels exact at every ε
            exact.push(mig.depth());
            let got = lm.depth(&mig);
            // Stale by at most ε binds: the summary is one of the last
            // ε+1 exact depths (or the pre-edit one while slack lasts).
            let mut window: Vec<u32> = exact.iter().rev().take(3).copied().collect();
            window.push(d0);
            assert!(window.contains(&got), "depth {got} not within ε window");
        }
        assert_eq!(lm.depth(&mig), *exact.last().unwrap(), "slack exhausted");
    }

    #[test]
    fn property_random_edit_sequences_match_recompute() {
        // Random substitute/eliminate/rebuild/append sequences on
        // SplitMix64-seeded corpora: after every bind the mirror must
        // match a from-scratch topological recompute exactly (ε=0).
        for seed in 0..6u64 {
            let mut rng = mig_netlist::SplitMix64::seed_from_u64(0x1e7e_1000 + seed);
            let mut mig = Mig::new(format!("corpus{seed}"));
            let ins: Vec<Signal> = (0..8).map(|i| mig.add_input(format!("x{i}"))).collect();
            let mut sigs = ins.clone();
            for _ in 0..40 {
                let a = sigs[rng.gen_range(0..sigs.len())];
                let b = sigs[rng.gen_range(0..sigs.len())];
                let c = sigs[rng.gen_range(0..sigs.len())];
                sigs.push(mig.maj(a, b, c));
            }
            let root = *sigs.last().unwrap();
            mig.add_output("y", root);
            let mut lm = LevelMap::new();
            let mut bufs = OptBuffers::new();
            lm.bind(&mig);
            assert_exact(&lm, &mig);
            for step in 0..60 {
                match rng.gen_range(0..4) {
                    // Append a random cone.
                    0 => {
                        let a = sigs[rng.gen_range(0..sigs.len())];
                        let b = sigs[rng.gen_range(0..sigs.len())];
                        let c = sigs[rng.gen_range(0..sigs.len())];
                        let s = mig.maj(a, b, c);
                        sigs.push(s);
                        if rng.gen_bool(0.5) {
                            mig.set_output(0, s);
                        }
                    }
                    // Substitute: rebuild the output cone with one
                    // node replaced (appends, then redirects).
                    1 => {
                        let from = sigs[rng.gen_range(0..sigs.len())].node();
                        let to = sigs[rng.gen_range(0..sigs.len())];
                        if mig.is_gate(from) && to.node() != from {
                            let out = mig.outputs()[0].1;
                            let new_root = mig.substitute(out, from, to);
                            mig.set_output(0, new_root);
                        }
                    }
                    // Eliminate-style rebuild into a recycled arena
                    // (fresh generation → global fallback path).
                    2 => {
                        let rebuilt = bufs.cleanup(&mig);
                        bufs.recycle(std::mem::replace(&mut mig, rebuilt));
                        sigs = (0..mig.num_inputs()).map(|i| mig.input(i)).collect();
                        sigs.extend(mig.gate_ids().map(|n| Signal::new(n, false)));
                    }
                    // Output redirect only (stamp moves, no growth).
                    _ => {
                        let s = sigs[rng.gen_range(0..sigs.len())];
                        mig.set_output(0, s);
                    }
                }
                lm.bind(&mig);
                assert_exact(&lm, &mig);
                assert_eq!(lm.depth(&mig), mig.depth(), "ε=0 depth exact at {step}");
            }
            let stats = lm.stats();
            assert!(
                stats.incremental_repairs > 0,
                "corpus {seed} must exercise the bounded path: {stats:?}"
            );
            assert!(
                stats.global_rebuilds > 0,
                "corpus {seed} must exercise the fallback path: {stats:?}"
            );
        }
    }

    #[test]
    fn large_append_falls_back_to_global() {
        let mut mig = Mig::new("t");
        let a = mig.add_input("a");
        let b = mig.add_input("b");
        let m = mig.and(a, b);
        mig.add_output("y", m);
        let mut lm = LevelMap::new();
        lm.set_global_fraction(0.25);
        lm.bind(&mig);
        // Quadruple the arena: appended fraction > 25 % forces resync.
        let mut x = m;
        for i in 0..40 {
            x = mig.maj(x, a, if i % 2 == 0 { b } else { !b });
        }
        mig.set_output(0, x);
        let globals = lm.stats().global_rebuilds;
        lm.bind(&mig);
        assert_eq!(lm.stats().global_rebuilds, globals + 1);
        assert_exact(&lm, &mig);
    }
}
