//! Property test for the open-addressing strash table: random `maj`
//! construction sequences must behave exactly like the previous
//! `HashMap<[Signal; 3], NodeId>` implementation — identical node ids,
//! identical gate counts, and functions verified by truth tables —
//! including the `Ω.I` complement-normalization collisions (two
//! complemented fanins flip the stored key).

use mig_core::{Mig, NodeId, Signal};
use mig_netlist::SplitMix64;
use mig_tt::TruthTable;
use std::collections::HashMap;

const NUM_INPUTS: usize = 8;

/// Shadow of the pre-refactor `Mig::maj` semantics with the original
/// `HashMap` strash, tracking a truth table per node.
struct RefMig {
    children: Vec<[Signal; 3]>,
    tt: Vec<TruthTable>,
    strash: HashMap<[Signal; 3], NodeId>,
}

impl RefMig {
    fn new() -> Self {
        let mut tt = vec![TruthTable::zeros(NUM_INPUTS)];
        for i in 0..NUM_INPUTS {
            tt.push(TruthTable::var(i, NUM_INPUTS));
        }
        RefMig {
            children: vec![[Signal::FALSE; 3]; NUM_INPUTS + 1],
            tt,
            strash: HashMap::new(),
        }
    }

    fn tt_of(&self, s: Signal) -> TruthTable {
        let t = self.tt[s.node().index()].clone();
        if s.is_complemented() {
            t.not()
        } else {
            t
        }
    }

    fn maj(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        if a == b {
            return a;
        }
        if a == !b {
            return c;
        }
        if a == c {
            return a;
        }
        if a == !c {
            return b;
        }
        if b == c {
            return b;
        }
        if b == !c {
            return a;
        }
        let n_compl =
            a.is_complemented() as u8 + b.is_complemented() as u8 + c.is_complemented() as u8;
        if n_compl >= 2 {
            return !self.maj_canonical(!a, !b, !c);
        }
        self.maj_canonical(a, b, c)
    }

    fn maj_canonical(&mut self, a: Signal, b: Signal, c: Signal) -> Signal {
        let mut key = [a, b, c];
        key.sort_unstable();
        if let Some(&node) = self.strash.get(&key) {
            return Signal::new(node, false);
        }
        let node = NodeId::from_index(self.children.len());
        let tt = TruthTable::maj(
            &self.tt_of(key[0]),
            &self.tt_of(key[1]),
            &self.tt_of(key[2]),
        );
        self.children.push(key);
        self.tt.push(tt);
        self.strash.insert(key, node);
        Signal::new(node, false)
    }
}

fn random_signal(rng: &mut SplitMix64, pool: &[Signal]) -> Signal {
    let s = pool[rng.gen_range(0..pool.len())];
    s.complement_if(rng.gen_bool(0.5))
}

#[test]
fn random_construction_matches_hashmap_semantics() {
    for seed in [1u64, 0xDEAD_BEEF, 0x5EED_0000_0001] {
        let mut rng = SplitMix64::seed_from_u64(seed);
        let mut mig = Mig::new("prop");
        let mut reference = RefMig::new();
        let mut pool: Vec<Signal> = vec![Signal::FALSE];
        for i in 0..NUM_INPUTS {
            pool.push(mig.add_input(format!("x{i}")));
        }
        for step in 0..3000 {
            let a = random_signal(&mut rng, &pool);
            let b = random_signal(&mut rng, &pool);
            let c = random_signal(&mut rng, &pool);
            // The real table and the HashMap shadow must agree on the
            // resulting signal bit-for-bit (same node id, same
            // complement) and on whether a node was allocated.
            let got = mig.maj(a, b, c);
            let want = reference.maj(a, b, c);
            assert_eq!(
                got, want,
                "seed {seed} step {step}: maj({a}, {b}, {c}) diverged"
            );
            // lookup_maj must now see the node without allocating.
            assert_eq!(
                mig.lookup_maj(a, b, c),
                Some(got),
                "seed {seed} step {step}: lookup after construction"
            );
            // The Ω.I dual must land on the same node, complemented —
            // this is the complement-normalization collision path.
            let dual = mig.maj(!a, !b, !c);
            assert_eq!(dual, !got, "seed {seed} step {step}: Ω.I dual");
            pool.push(got);
        }
        assert_eq!(
            mig.num_gates() + NUM_INPUTS + 1,
            reference.children.len(),
            "seed {seed}: same number of allocated nodes"
        );
        // Functions agree everywhere: spot-check a sample of signals via
        // exact truth tables.
        let mut check = mig.clone();
        let mut expected = Vec::new();
        for i in 0..64 {
            let s = pool[(i * 37) % pool.len()];
            check.add_output(format!("o{i}"), s);
            expected.push(reference.tt_of(s));
        }
        assert_eq!(
            check.truth_tables(),
            expected,
            "seed {seed}: truth tables diverged"
        );
    }
}

#[test]
fn identical_sequences_yield_identical_arenas() {
    // Determinism of the table across two independent builds.
    let build = || {
        let mut rng = SplitMix64::seed_from_u64(777);
        let mut mig = Mig::new("det");
        let mut pool: Vec<Signal> = vec![Signal::TRUE];
        for i in 0..6 {
            pool.push(mig.add_input(format!("x{i}")));
        }
        for _ in 0..500 {
            let a = random_signal(&mut rng, &pool);
            let b = random_signal(&mut rng, &pool);
            let c = random_signal(&mut rng, &pool);
            let s = mig.maj(a, b, c);
            pool.push(s);
        }
        (mig, pool)
    };
    let (m1, p1) = build();
    let (m2, p2) = build();
    assert_eq!(p1, p2, "same seed, same signals");
    assert_eq!(m1.num_gates(), m2.num_gates());
    for n in m1.gate_ids() {
        assert_eq!(m1.children(n), m2.children(n), "node {n}");
    }
}
