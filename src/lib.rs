//! # mig-suite — Majority-Inverter Graph logic optimization
//!
//! A from-scratch Rust reproduction of *"Majority-Inverter Graph: A Novel
//! Data-Structure and Algorithms for Efficient Logic Optimization"*
//! (Amarù, Gaillardon, De Micheli — DAC 2014).
//!
//! This facade crate re-exports the member crates of the workspace:
//!
//! * [`tt`] — truth tables, NPN canonization, ISOP, factoring
//! * [`netlist`] — generic logic networks + structural Verilog I/O
//! * [`mig`] — the MIG data structure, Ω/Ψ algebra and optimizers
//! * [`aig`] — AIG substrate with a `resyn2`-style flow (ABC baseline)
//! * [`bdd`] — ROBDD package with BDS-style decomposition (BDS baseline)
//! * [`sim`] — simulation, equivalence checking, switching activity
//! * [`techmap`] — technology mapping onto a 22nm-style cell library
//! * [`benchgen`] — deterministic MCNC-style benchmark generators
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every table and figure.

pub use mig_aig as aig;
pub use mig_bdd as bdd;
pub use mig_benchgen as benchgen;
pub use mig_core as mig;
pub use mig_netlist as netlist;
pub use mig_sim as sim;
pub use mig_techmap as techmap;
pub use mig_tt as tt;
